//! Multi-query serving — the cost of *sharing* the aggregation overlay
//! across registered queries (§3's aggregation sharing, lifted to the
//! serving layer): attaching a query whose plan overlaps the live overlay
//! must reuse the already-materialized PAOs and only materialize the
//! delta, and the registry must sustain attach/detach churn under
//! continuous ingest.
//!
//! Three scenarios, one JSON artifact (`BENCH_fig_multiquery.json`):
//!
//! * **cold-build** — compiling the full-graph query from scratch: the
//!   reference PAO count every warm attach is compared against;
//! * **warm-attach** — a half-graph primary is live and warm; queries
//!   covering 25/50/75/100% of the graph attach onto it. Reported
//!   `materialized` (fresh + upgraded PAOs) must stay strictly below the
//!   cold build's count and `reuse_fraction` strictly above zero — the
//!   invariants `bench_check` gates on;
//! * **churn** — attach → read → detach of an overlapping query every
//!   round while ingest batches keep flowing: sustained registration
//!   throughput on a warm system.

use eagr::gen::{generate_events, social_graph, Event, WorkloadConfig};
use eagr::prelude::*;
use eagr_bench::{banner, f, quick, scale, write_json_artifact, Json, Table};
use std::time::Instant;

fn main() {
    let n = ((8_000.0 * scale()) as usize).max(500);
    let half = (n / 2) as u32;
    banner(
        "Multi-query serving",
        "PAO reuse on attach + registry churn under ingest (§3 sharing at the serving layer)",
    );
    let g = social_graph(n, 6, 0x3A6E);
    let warmup = generate_events(
        n,
        &WorkloadConfig {
            events: 4 * n,
            write_to_read: 1e9, // writes only: warm every window
            ..Default::default()
        },
    );
    println!(
        "graph: {n} users; warm-up stream: {} writes\n",
        warmup.len()
    );
    let mut rows: Vec<Json> = Vec::new();

    // (1) Cold build of the full-graph query: the PAO count a from-scratch
    // compile materializes, and the reference for every warm attach below.
    let t0 = Instant::now();
    let cold_sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold = cold_sys.handle().attach_report().expect("primary report");
    let cold_paos = cold.fresh_paos;
    drop(cold_sys);
    println!("cold build: {cold_paos} PAOs in {}ms", f(cold_ms));
    rows.push(Json::obj(vec![
        ("row", Json::Str("cold-build".into())),
        ("paos", Json::Num(cold_paos as f64)),
        ("build_ms", Json::Num(cold_ms)),
    ]));

    // (2) Warm attaches onto a live half-graph primary, by overlap with
    // the already-materialized overlay. Handles stay attached, so each
    // successive query also reuses its predecessors' extensions — exactly
    // how a long-lived serving deployment accretes.
    let sys = EagrSystem::builder(EgoQuery::new(Sum).filter(move |v| v.0 < half)).build(&g);
    sys.ingest(&warmup);
    let t = Table::new(&["coverage", "attach ms", "materialized", "reused", "reuse"]);
    let mut handles = Vec::new();
    for pct in [25u32, 50, 75, 100] {
        let bound = (n as u64 * pct as u64 / 100) as u32;
        let t0 = Instant::now();
        let h = sys.attach(EgoQuery::new(Sum).filter(move |v| v.0 < bound));
        let attach_ms = t0.elapsed().as_secs_f64() * 1e3;
        let rep = h.attach_report().expect("attach report");
        t.row(&[
            &format!("{pct}%"),
            &f(attach_ms),
            &rep.materialized(),
            &rep.reused_paos,
            &format!("{:.3}", rep.reuse_fraction()),
        ]);
        rows.push(Json::obj(vec![
            ("row", Json::Str("warm-attach".into())),
            ("coverage_pct", Json::Num(pct as f64)),
            ("attach_ms", Json::Num(attach_ms)),
            ("materialized", Json::Num(rep.materialized() as f64)),
            ("reused", Json::Num(rep.reused_paos as f64)),
            ("reuse_fraction", Json::Num(rep.reuse_fraction())),
        ]));
        handles.push(h);
    }

    // (3) Registration churn under sustained ingest: every round ingests a
    // batch, attaches an overlapping query, reads through it, detaches.
    let rounds = if quick() { 5 } else { 20 };
    let batch: Vec<Event> = (0..n)
        .map(|i| Event::Write {
            node: NodeId(i as u32),
            value: i as i64 % 101 - 50,
        })
        .collect();
    let probe: Vec<NodeId> = (0..64.min(n as u32)).map(NodeId).collect();
    let t0 = Instant::now();
    let mut events = 0usize;
    for _ in 0..rounds {
        events += sys.ingest(&batch).total();
        let h = sys.attach(EgoQuery::new(Sum).filter(move |v| v.0 % 3 != 0));
        std::hint::black_box(h.read_batch(&probe));
        sys.detach(h);
    }
    let dt = t0.elapsed().as_secs_f64();
    let (ops_s, att_s) = (events as f64 / dt, rounds as f64 / dt);
    println!(
        "\nchurn: {rounds} attach/read/detach rounds over {events} writes in {}ms",
        f(dt * 1e3)
    );
    println!("  {} writes/s alongside {} attaches/s", f(ops_s), f(att_s));
    rows.push(Json::obj(vec![
        ("row", Json::Str("churn".into())),
        ("rounds", Json::Num(rounds as f64)),
        ("events", Json::Num(events as f64)),
        ("ops_per_s", Json::Num(ops_s)),
        ("attaches_per_s", Json::Num(att_s)),
    ]));

    println!("\nexpect: every warm attach materializes strictly fewer PAOs than the cold");
    println!("build, with nonzero reuse even at 100% coverage (half the graph is shared).");
    write_json_artifact(
        "fig_multiquery",
        &Json::obj(vec![
            ("figure", Json::Str("fig_multiquery".into())),
            ("scale", Json::Num(scale())),
            ("nodes", Json::Num(n as f64)),
            ("cold_paos", Json::Num(cold_paos as f64)),
            ("rows", Json::Arr(rows)),
        ]),
    );
}
