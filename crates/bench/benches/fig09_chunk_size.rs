//! Fig 9 — effect of the reader-group (chunk) size on plain VNM, vs the
//! adaptive VNM_A.
//!
//! Paper shape: plain VNM's final sharing index is highly sensitive to the
//! chunk size, with a different optimum per graph; VNM_A (initial chunk
//! 100) matches or slightly beats the best fixed choice everywhere.

use eagr::gen::Dataset;
use eagr::graph::{BipartiteGraph, Neighborhood};
use eagr::overlay::{build_vnm, VnmConfig};
use eagr_bench::{banner, f, scale, sum_props, Table};

fn main() {
    banner(
        "Figure 9",
        "sharing index vs chunk size: VNM (fixed) vs VNMA (adaptive)",
    );
    let chunks = [4usize, 8, 16, 32, 64, 100];
    let sc = 0.4 * scale();
    let datasets = [
        Dataset::GplusLike,
        Dataset::Eu2005Like,
        Dataset::LiveJournalLike,
    ];
    let t = Table::new(&[
        "graph",
        "c=4",
        "c=8",
        "c=16",
        "c=32",
        "c=64",
        "c=100",
        "VNMA(100)",
    ]);
    for ds in datasets {
        let g = ds.build(sc, 0xF169);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let mut cells: Vec<String> = vec![ds.name().to_string()];
        for &c in &chunks {
            let mut cfg = VnmConfig::vnm(c, sum_props());
            cfg.iterations = 6;
            let (ov, _) = build_vnm(&ag, &cfg);
            cells.push(f(ov.sharing_index()));
        }
        let mut cfg = VnmConfig::vnma(sum_props());
        cfg.iterations = 6;
        let (ov, _) = build_vnm(&ag, &cfg);
        cells.push(f(ov.sharing_index()));
        t.print_row(&cells);
    }
    println!("\nexpect: fixed-chunk quality varies with c per graph; VNMA ≈ best fixed chunk.");
}
