//! Criterion microbenchmarks of the primitives whose costs the paper's
//! cost model parameterizes (§4.2): aggregate pushes/pulls (validating the
//! H(k)/L(k) shapes), FP-tree mining, shingles, Dinic max-flow, and single
//! engine operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eagr::agg::{Aggregate, Max, Sum, TopK, WindowSpec};
use eagr::exec::{
    EngineCore, ParallelConfig, ParallelEngine, RebalancePolicy, ShardedConfig, ShardedEngine,
};
use eagr::flow::{Decisions, Dinic};
use eagr::gen::{generate_events, Dataset, Event, WorkloadConfig};
use eagr::graph::{BipartiteGraph, Neighborhood, NodeId, PartitionStrategy};
use eagr::overlay::fptree::FpTree;
use eagr::overlay::shingle::shingles;
use eagr::overlay::Overlay;
use eagr::util::SplitMix64;
use std::sync::Arc;
use std::time::Duration;

fn quick() -> Criterion {
    // `--quick` (nightly CI) shrinks the sampling further so the full
    // criterion suite stays a smoke test.
    let (samples, measure_ms, warm_ms) = if eagr_bench::quick() {
        (10, 200, 100)
    } else {
        (20, 600, 200)
    };
    Criterion::default()
        .sample_size(samples)
        .measurement_time(Duration::from_millis(measure_ms))
        .warm_up_time(Duration::from_millis(warm_ms))
}

/// H(k): one push (insert+remove pair) into a PAO of k values.
fn bench_push_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_H_of_k");
    for k in [16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("sum", k), &k, |b, &k| {
            let mut p = Sum.empty();
            for i in 0..k {
                Sum.insert(&mut p, i as i64);
            }
            b.iter(|| {
                Sum.insert(&mut p, 7);
                Sum.remove(&mut p, 7);
            });
        });
        group.bench_with_input(BenchmarkId::new("max", k), &k, |b, &k| {
            let m = Max;
            let mut p = m.empty();
            for i in 0..k {
                m.insert(&mut p, i as i64);
            }
            b.iter(|| {
                m.insert(&mut p, 7);
                m.remove(&mut p, 7);
            });
        });
        group.bench_with_input(BenchmarkId::new("topk", k), &k, |b, &k| {
            let t = TopK::new(10);
            let mut p = t.empty();
            for i in 0..k {
                t.insert(&mut p, (i % 97) as i64);
            }
            b.iter(|| {
                t.insert(&mut p, 7);
                t.remove(&mut p, 7);
            });
        });
    }
    group.finish();
}

/// L(k): merging k singleton PAOs (a pull over k inputs).
fn bench_pull_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("pull_L_of_k");
    for k in [16usize, 256] {
        group.bench_with_input(BenchmarkId::new("sum", k), &k, |b, &k| {
            let singles: Vec<i64> = (0..k as i64).collect();
            b.iter(|| {
                let mut acc = Sum.empty();
                for s in &singles {
                    Sum.merge(&mut acc, s);
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("topk", k), &k, |b, &k| {
            let t = TopK::new(10);
            let singles: Vec<_> = (0..k)
                .map(|i| {
                    let mut p = t.empty();
                    t.insert(&mut p, (i % 13) as i64);
                    p
                })
                .collect();
            b.iter(|| {
                let mut acc = t.empty();
                for s in &singles {
                    t.merge(&mut acc, s);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_shingles(c: &mut Criterion) {
    let list: Vec<u32> = (0..200).collect();
    c.bench_function("shingle_signature_200_items", |b| {
        b.iter(|| shingles(&list, 2, 42))
    });
}

fn bench_fptree(c: &mut Criterion) {
    // One VNM group: 100 readers with overlapping 20-item lists.
    let mut rng = SplitMix64::new(5);
    let lists: Vec<Vec<u32>> = (0..100)
        .map(|_| {
            let mut l: Vec<u32> = (0..60).filter(|_| rng.chance(0.33)).collect();
            if l.is_empty() {
                l.push(rng.index(60) as u32);
            }
            l
        })
        .collect();
    c.bench_function("fptree_build_and_mine_group100", |b| {
        b.iter(|| {
            let mut t = FpTree::new();
            for (i, l) in lists.iter().enumerate() {
                t.insert_path(i as u32, l, |_| false);
            }
            t.best_biclique(2)
        })
    });
}

fn bench_maxflow(c: &mut Criterion) {
    c.bench_function("dinic_layered_1k_nodes", |b| {
        b.iter(|| {
            // Layered DAG: 3 layers of ~330 nodes.
            let n = 1000;
            let mut d = Dinic::new(n + 2);
            let (s, t) = (n, n + 1);
            let mut rng = SplitMix64::new(9);
            for v in 0..330 {
                d.add_edge(s, v, rng.range(1, 100) as i64);
            }
            for v in 0..330 {
                for _ in 0..3 {
                    d.add_edge(v, 330 + rng.index(330), eagr::flow::maxflow::INF);
                }
            }
            for v in 330..660 {
                for _ in 0..3 {
                    d.add_edge(v, 660 + rng.index(330), eagr::flow::maxflow::INF);
                }
            }
            for v in 660..990 {
                d.add_edge(v, t, rng.range(1, 100) as i64);
            }
            d.max_flow(s, t)
        })
    });
}

fn bench_engine_ops(c: &mut Criterion) {
    let g = Dataset::LiveJournalLike.build(0.2, 0xBEE);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let push_core = EngineCore::new(
        Sum,
        Arc::clone(&ov),
        &Decisions::all_push(&ov),
        WindowSpec::Tuple(1),
    );
    let pull_core = EngineCore::new(
        Sum,
        Arc::clone(&ov),
        &Decisions::all_pull(&ov),
        WindowSpec::Tuple(1),
    );
    let mut rng = SplitMix64::new(3);
    for v in g.nodes() {
        push_core.write(v, 1, 0);
        pull_core.write(v, 1, 0);
    }
    let nodes: Vec<NodeId> = g.nodes().collect();
    c.bench_function("engine_write_all_push", |b| {
        let mut ts = 1;
        b.iter(|| {
            let v = *rng.choose(&nodes);
            ts += 1;
            push_core.write(v, 7, ts)
        })
    });
    c.bench_function("engine_read_push_reader", |b| {
        b.iter(|| push_core.read(*rng.choose(&nodes)))
    });
    c.bench_function("engine_read_pull_reader", |b| {
        b.iter(|| pull_core.read(*rng.choose(&nodes)))
    });
}

/// Write ingestion paths over the same graph, decisions, and event batch:
/// per-event single-threaded, per-event two-pool (queueing model), and
/// sharded batch ingestion — the micro view of fig14(d).
fn bench_write_ingestion(c: &mut Criterion) {
    let g = Dataset::LiveJournalLike.build(0.2, 0xF00D);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let decisions = Decisions::all_push(&ov);
    let batch: Vec<Event> = generate_events(
        n,
        &WorkloadConfig {
            events: 2000,
            write_to_read: 1e9,
            seed: 0xF00D,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("write_ingestion_2k_events");

    let single = EngineCore::new(Sum, Arc::clone(&ov), &decisions, WindowSpec::Tuple(1));
    let mut ts = 0u64;
    group.bench_function("per_event_single_thread", |b| {
        b.iter(|| {
            for e in &batch {
                if let Event::Write { node, value } = *e {
                    single.write(node, value, ts);
                    ts += 1;
                }
            }
        })
    });

    let pooled = ParallelEngine::new(
        Arc::new(EngineCore::new(
            Sum,
            Arc::clone(&ov),
            &decisions,
            WindowSpec::Tuple(1),
        )),
        ParallelConfig::default(),
    );
    let mut ts = 0u64;
    group.bench_function("per_event_two_pool_drained", |b| {
        b.iter(|| {
            for e in &batch {
                if let Event::Write { node, value } = *e {
                    pooled.submit_write(node, value, ts);
                    ts += 1;
                }
            }
            pooled.drain();
        })
    });

    for shards in [2usize, 4] {
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &decisions,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(shards)
                .strategy(PartitionStrategy::Chunk { chunk_size: 64 })
                .channel_capacity(1 << 12)
                .rebalance(RebalancePolicy::default())
                .build(),
        );
        let mut ts = 0u64;
        group.bench_function(format!("batched_sharded_x{shards}_epoch"), |b| {
            b.iter(|| {
                // Borrowing entry point: no per-iteration batch clone, so
                // the timed region matches the per-event variants.
                eng.ingest_epoch_at(&batch, ts).unwrap();
                ts += batch.len() as u64;
            })
        });
        eng.shutdown();
    }
    pooled.shutdown();
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_push_cost, bench_pull_cost, bench_shingles, bench_fptree, bench_maxflow, bench_engine_ops, bench_write_ingestion
}
criterion_main!(benches);
