//! Fig 10 — (a) cumulative construction running time per iteration and
//! (b) memory consumption, for the four construction algorithms on the
//! LiveJournal stand-in.
//!
//! Paper shape: IOB spends more per early iteration but converges in fewer,
//! ending cheaper overall than VNM_N/VNM_D; VNM_N and VNM_D cost more per
//! iteration than VNM_A. IOB uses roughly 2× the memory of the VNM family
//! (global reverse/forward indexes).

use eagr::gen::Dataset;
use eagr::graph::{BipartiteGraph, Neighborhood};
use eagr::overlay::{build_iob, build_vnm, IobConfig, IterationStats, VnmConfig};
use eagr_bench::{banner, max_props, scale, sum_props, Table};

fn print_algo(t: &Table, name: &str, stats: &[IterationStats]) {
    for s in stats {
        t.row(&[
            &name,
            &s.iteration,
            &format!("{:.0}", s.cumulative_ms),
            &format!("{:.2}", s.memory_bytes as f64 / 1e6),
            &format!("{:.3}", s.sharing_index),
        ]);
    }
}

fn main() {
    banner(
        "Figure 10",
        "(a) cumulative running time and (b) memory per iteration, LiveJournal-like",
    );
    let g = Dataset::LiveJournalLike.build(0.6 * scale(), 0xF1610);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    println!(
        "graph: {} nodes, {} bipartite edges\n",
        g.node_count(),
        ag.edge_count()
    );
    let t = Table::new(&["algorithm", "iteration", "cum ms", "mem MB", "SI"]);

    let mut cfg = VnmConfig::vnma(sum_props());
    cfg.iterations = 8;
    let (_, st) = build_vnm(&ag, &cfg);
    print_algo(&t, "VNMA", &st);

    let mut cfg = VnmConfig::vnmn(sum_props());
    cfg.iterations = 8;
    let (_, st) = build_vnm(&ag, &cfg);
    print_algo(&t, "VNMN", &st);

    let mut cfg = VnmConfig::vnmd(max_props());
    cfg.iterations = 8;
    let (_, st) = build_vnm(&ag, &cfg);
    print_algo(&t, "VNMD", &st);

    let (_, st) = build_iob(
        &ag,
        &IobConfig {
            iterations: 4,
            ..Default::default()
        },
    );
    print_algo(&t, "IOB", &st);

    println!("\nexpect: VNMN/VNMD cost more per iteration than VNMA; IOB front-loads its work");
    println!("and converges in fewer iterations; IOB memory ≈ 2× VNM (reverse index).");
}
