//! Fig 14 — the headline end-to-end throughput experiments:
//!
//! * **(a)** throughput vs write:read ratio for SUM / MAX / TOP-K × {all
//!   push, all pull, VNMA, VNMN or VNMD, IOB};
//! * **(b)** the gain from §4.7 node splitting vs write:read ratio;
//! * **(c)** 2-hop aggregates: overlay-dataflow vs all-push / all-pull.
//!
//! Paper shapes: overlays beat both baselines everywhere (≈5–6× near 1:1);
//! all-pull wins the baseline race on write-heavy loads and all-push on
//! read-heavy loads; improvements are largest for TOP-K; IOB trails the
//! VNM family despite better compression (deeper overlays); splitting
//! yields >2× near 1:1 and ≈1× at the extremes; 2-hop gains exceed 1-hop.

use eagr::agg::{Aggregate, CostModel, Max, Sum, TopK, WindowSpec};
use eagr::exec::EngineCore;
use eagr::flow::{plan, DecisionAlgorithm, PlannerConfig, Rates};
use eagr::gen::{generate_events, zipf_rates, Dataset, Event, WorkloadConfig};
use eagr::graph::{BipartiteGraph, Neighborhood};
use eagr::overlay::{build_iob, build_vnm, IobConfig, Overlay, VnmConfig};
use eagr_bench::{banner, max_props, scale, sum_props, Table};
use std::sync::Arc;
use std::time::Instant;

const RATIOS: [f64; 5] = [0.05, 0.2, 1.0, 5.0, 20.0];

fn run_plan<A: Aggregate + Clone>(
    agg: A,
    ov: &Overlay,
    rates: &Rates,
    alg: DecisionAlgorithm,
    split: bool,
    events: &[Event],
) -> f64 {
    let cost = CostModel::from_aggregate(&agg);
    let p = plan(
        ov.clone(),
        rates,
        &cost,
        &PlannerConfig {
            algorithm: alg,
            split,
            writer_window: 1,
            push_amplification: 2.0,
        },
    );
    let core = EngineCore::new(
        agg,
        Arc::new(p.overlay.clone()),
        &p.decisions,
        WindowSpec::Tuple(1),
    );
    let t0 = Instant::now();
    for (i, e) in events.iter().enumerate() {
        match *e {
            Event::Write { node, value } => {
                core.write(node, value, i as u64);
            }
            Event::Read { node } => {
                std::hint::black_box(core.read(node));
            }
        }
    }
    events.len() as f64 / t0.elapsed().as_secs_f64()
}

fn events_for(n: usize, ratio: f64, count: usize) -> Vec<Event> {
    generate_events(
        n,
        &WorkloadConfig {
            events: count,
            write_to_read: ratio,
            seed: 0xF14 ^ (ratio * 100.0) as u64,
            ..Default::default()
        },
    )
}

fn fig14a() {
    banner(
        "Figure 14(a)",
        "throughput (ops/s) vs write:read ratio, per aggregate and system",
    );
    let g = Dataset::LiveJournalLike.build(0.5 * scale(), 0xF14A);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let direct = Overlay::direct_from_bipartite(&ag);
    let (vnma, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    let (vnmn, _) = build_vnm(&ag, &VnmConfig::vnmn(sum_props()));
    let (vnmd, _) = build_vnm(&ag, &VnmConfig::vnmd(max_props()));
    let (iob, _) = build_iob(&ag, &IobConfig::default());
    println!(
        "graph {} nodes / {} AG edges; SI: VNMA {:.3}, VNMN {:.3}, VNMD {:.3}, IOB {:.3}\n",
        g.node_count(),
        ag.edge_count(),
        vnma.sharing_index(),
        vnmn.sharing_index(),
        vnmd.sharing_index(),
        iob.sharing_index()
    );
    let count = (40_000.0 * scale()) as usize;

    macro_rules! agg_block {
        ($name:literal, $agg:expr, $special:expr, $special_name:literal) => {{
            println!("[{}]", $name);
            let mut header = vec!["w:r".to_string()];
            for s in ["all-push", "all-pull", "VNMA", $special_name, "IOB"] {
                header.push(s.to_string());
            }
            let t = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            for ratio in RATIOS {
                let rates = zipf_rates(n, 1.0, ratio, 3);
                let events = events_for(n, ratio, count);
                let cells = vec![
                    format!("{ratio}"),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &direct,
                            &rates,
                            DecisionAlgorithm::AllPush,
                            false,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &direct,
                            &rates,
                            DecisionAlgorithm::AllPull,
                            false,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &vnma,
                            &rates,
                            DecisionAlgorithm::MaxFlow,
                            true,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            $special,
                            &rates,
                            DecisionAlgorithm::MaxFlow,
                            true,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &iob,
                            &rates,
                            DecisionAlgorithm::MaxFlow,
                            true,
                            &events
                        )
                    ),
                ];
                t.print_row(&cells);
            }
            println!();
        }};
    }
    agg_block!("SUM", Sum, &vnmn, "VNMN");
    agg_block!("MAX", Max, &vnmd, "VNMD");
    agg_block!("TOP-K", TopK::new(10), &vnmn, "VNMN");
    println!("expect: overlays ≫ baselines near 1:1; all-push wins read-heavy (w:r small),");
    println!("all-pull wins write-heavy; TOP-K shows the largest overlay gains; IOB trails VNMs.");
}

fn fig14b() {
    banner(
        "Figure 14(b)",
        "throughput gain from §4.7 node splitting vs write:read ratio",
    );
    let g = Dataset::LiveJournalLike.build(0.4 * scale(), 0xF14B);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    let count = (30_000.0 * scale()) as usize;
    let t = Table::new(&["w:r", "SUM gain", "MAX gain", "TOP-K gain"]);
    for ratio in [0.01, 0.1, 1.0, 10.0, 100.0] {
        let rates = zipf_rates(n, 1.0, ratio, 3);
        let events = events_for(n, ratio, count);
        let gain = |on: f64, off: f64| format!("{:.2}x", on / off);
        let s_on = run_plan(Sum, &ov, &rates, DecisionAlgorithm::MaxFlow, true, &events);
        let s_off = run_plan(Sum, &ov, &rates, DecisionAlgorithm::MaxFlow, false, &events);
        let m_on = run_plan(Max, &ov, &rates, DecisionAlgorithm::MaxFlow, true, &events);
        let m_off = run_plan(Max, &ov, &rates, DecisionAlgorithm::MaxFlow, false, &events);
        let k_on = run_plan(
            TopK::new(10),
            &ov,
            &rates,
            DecisionAlgorithm::MaxFlow,
            true,
            &events,
        );
        let k_off = run_plan(
            TopK::new(10),
            &ov,
            &rates,
            DecisionAlgorithm::MaxFlow,
            false,
            &events,
        );
        t.row(&[
            &format!("{ratio}"),
            &gain(s_on, s_off),
            &gain(m_on, m_off),
            &gain(k_on, k_off),
        ]);
    }
    println!("\nexpect: gains peak near w:r = 1 (>1x) and fade toward both extremes (≈1x).");
}

fn fig14c() {
    banner(
        "Figure 14(c)",
        "2-hop neighborhoods: overlay-dataflow vs all-push vs all-pull (1:1)",
    );
    let g = Dataset::LiveJournalLike.build(0.15 * scale(), 0xF14C);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::KHopIn(2), |_| true);
    let direct = Overlay::direct_from_bipartite(&ag);
    let (vnma, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    println!(
        "2-hop AG: {} edges (vs {} 1-hop); SI(VNMA) = {:.3}\n",
        ag.edge_count(),
        BipartiteGraph::build(&g, &Neighborhood::In, |_| true).edge_count(),
        vnma.sharing_index()
    );
    let rates = zipf_rates(n, 1.0, 1.0, 3);
    let events = events_for(n, 1.0, (20_000.0 * scale()) as usize);
    let t = Table::new(&["aggregate", "all-push", "dataflow overlay", "all-pull"]);
    macro_rules! row {
        ($name:literal, $agg:expr) => {{
            t.row(&[
                &$name,
                &format!(
                    "{:.0}",
                    run_plan(
                        $agg,
                        &direct,
                        &rates,
                        DecisionAlgorithm::AllPush,
                        false,
                        &events
                    )
                ),
                &format!(
                    "{:.0}",
                    run_plan(
                        $agg,
                        &vnma,
                        &rates,
                        DecisionAlgorithm::MaxFlow,
                        true,
                        &events
                    )
                ),
                &format!(
                    "{:.0}",
                    run_plan(
                        $agg,
                        &direct,
                        &rates,
                        DecisionAlgorithm::AllPull,
                        false,
                        &events
                    )
                ),
            ]);
        }};
    }
    row!("SUM", Sum);
    row!("MAX", Max);
    row!("TOP-K", TopK::new(10));
    println!("\nexpect: the overlay's relative win exceeds the 1-hop case (denser sharing).");
}

fn main() {
    fig14a();
    fig14b();
    fig14c();
}
