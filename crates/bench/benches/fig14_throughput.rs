//! Fig 14 — the headline end-to-end throughput experiments:
//!
//! * **(a)** throughput vs write:read ratio for SUM / MAX / TOP-K × {all
//!   push, all pull, VNMA, VNMN or VNMD, IOB};
//! * **(b)** the gain from §4.7 node splitting vs write:read ratio;
//! * **(c)** 2-hop aggregates: overlay-dataflow vs all-push / all-pull.
//!
//! Paper shapes: overlays beat both baselines everywhere (≈5–6× near 1:1);
//! all-pull wins the baseline race on write-heavy loads and all-push on
//! read-heavy loads; improvements are largest for TOP-K; IOB trails the
//! VNM family despite better compression (deeper overlays); splitting
//! yields >2× near 1:1 and ≈1× at the extremes; 2-hop gains exceed 1-hop.

use eagr::agg::{Aggregate, CostModel, Max, Sum, TopK, WindowSpec};
use eagr::exec::{
    EngineCore, ParallelConfig, ParallelEngine, RebalancePolicy, ShardedConfig, ShardedEngine,
    TransportKind,
};
use eagr::flow::{plan, DecisionAlgorithm, Decisions, PlannerConfig, Rates};
use eagr::gen::{
    batch_events, generate_events, rotating_hot_set, zipf_rates, Dataset, Event, WorkloadConfig,
};
use eagr::graph::{BipartiteGraph, Neighborhood, PartitionStrategy, DEFAULT_CHUNK_SIZE};
use eagr::overlay::{build_iob, build_vnm, IobConfig, Overlay, VnmConfig};
use eagr_bench::{banner, max_props, scale, sum_props, write_json_artifact, Json, Table};
use std::sync::Arc;
use std::time::Instant;

const RATIOS: [f64; 5] = [0.05, 0.2, 1.0, 5.0, 20.0];

/// Repeats for every throughput row the `bench-check` CI gate consumes
/// (fig14 d/e/f). Noise — scheduler preemption, a cold cache, a yield
/// storm in a drain loop — only ever *slows* a run, so best-of-k is a
/// robust throughput estimator where a single window flakes well past the
/// gate's 25% tolerance on small shared runners.
const GATE_REPEATS: usize = 3;

/// Best (maximum) ops/s over [`GATE_REPEATS`] runs of `run`.
fn best_ops(mut run: impl FnMut() -> f64) -> f64 {
    (0..GATE_REPEATS).map(|_| run()).fold(f64::MIN, f64::max)
}

fn run_plan<A: Aggregate + Clone>(
    agg: A,
    ov: &Overlay,
    rates: &Rates,
    alg: DecisionAlgorithm,
    split: bool,
    events: &[Event],
) -> f64 {
    let cost = CostModel::from_aggregate(&agg);
    let p = plan(
        ov.clone(),
        rates,
        &cost,
        &PlannerConfig {
            algorithm: alg,
            split,
            writer_window: 1,
            push_amplification: 2.0,
        },
    );
    let core = EngineCore::new(
        agg,
        Arc::new(p.overlay.clone()),
        &p.decisions,
        WindowSpec::Tuple(1),
    );
    let t0 = Instant::now();
    for (i, e) in events.iter().enumerate() {
        match *e {
            Event::Write { node, value } => {
                core.write(node, value, i as u64);
            }
            Event::Read { node } => {
                std::hint::black_box(core.read(node));
            }
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {}
        }
    }
    events.len() as f64 / t0.elapsed().as_secs_f64()
}

fn events_for(n: usize, ratio: f64, count: usize) -> Vec<Event> {
    generate_events(
        n,
        &WorkloadConfig {
            events: count,
            write_to_read: ratio,
            seed: 0xF14 ^ (ratio * 100.0) as u64,
            ..Default::default()
        },
    )
}

fn fig14a() {
    banner(
        "Figure 14(a)",
        "throughput (ops/s) vs write:read ratio, per aggregate and system",
    );
    let g = Dataset::LiveJournalLike.build(0.5 * scale(), 0xF14A);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let direct = Overlay::direct_from_bipartite(&ag);
    let (vnma, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    let (vnmn, _) = build_vnm(&ag, &VnmConfig::vnmn(sum_props()));
    let (vnmd, _) = build_vnm(&ag, &VnmConfig::vnmd(max_props()));
    let (iob, _) = build_iob(&ag, &IobConfig::default());
    println!(
        "graph {} nodes / {} AG edges; SI: VNMA {:.3}, VNMN {:.3}, VNMD {:.3}, IOB {:.3}\n",
        g.node_count(),
        ag.edge_count(),
        vnma.sharing_index(),
        vnmn.sharing_index(),
        vnmd.sharing_index(),
        iob.sharing_index()
    );
    let count = (40_000.0 * scale()) as usize;

    macro_rules! agg_block {
        ($name:literal, $agg:expr, $special:expr, $special_name:literal) => {{
            println!("[{}]", $name);
            let mut header = vec!["w:r".to_string()];
            for s in ["all-push", "all-pull", "VNMA", $special_name, "IOB"] {
                header.push(s.to_string());
            }
            let t = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            for ratio in RATIOS {
                let rates = zipf_rates(n, 1.0, ratio, 3);
                let events = events_for(n, ratio, count);
                let cells = vec![
                    format!("{ratio}"),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &direct,
                            &rates,
                            DecisionAlgorithm::AllPush,
                            false,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &direct,
                            &rates,
                            DecisionAlgorithm::AllPull,
                            false,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &vnma,
                            &rates,
                            DecisionAlgorithm::MaxFlow,
                            true,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            $special,
                            &rates,
                            DecisionAlgorithm::MaxFlow,
                            true,
                            &events
                        )
                    ),
                    format!(
                        "{:.0}",
                        run_plan(
                            $agg,
                            &iob,
                            &rates,
                            DecisionAlgorithm::MaxFlow,
                            true,
                            &events
                        )
                    ),
                ];
                t.print_row(&cells);
            }
            println!();
        }};
    }
    agg_block!("SUM", Sum, &vnmn, "VNMN");
    agg_block!("MAX", Max, &vnmd, "VNMD");
    agg_block!("TOP-K", TopK::new(10), &vnmn, "VNMN");
    println!("expect: overlays ≫ baselines near 1:1; all-push wins read-heavy (w:r small),");
    println!("all-pull wins write-heavy; TOP-K shows the largest overlay gains; IOB trails VNMs.");
}

fn fig14b() {
    banner(
        "Figure 14(b)",
        "throughput gain from §4.7 node splitting vs write:read ratio",
    );
    let g = Dataset::LiveJournalLike.build(0.4 * scale(), 0xF14B);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    let count = (30_000.0 * scale()) as usize;
    let t = Table::new(&["w:r", "SUM gain", "MAX gain", "TOP-K gain"]);
    for ratio in [0.01, 0.1, 1.0, 10.0, 100.0] {
        let rates = zipf_rates(n, 1.0, ratio, 3);
        let events = events_for(n, ratio, count);
        let gain = |on: f64, off: f64| format!("{:.2}x", on / off);
        let s_on = run_plan(Sum, &ov, &rates, DecisionAlgorithm::MaxFlow, true, &events);
        let s_off = run_plan(Sum, &ov, &rates, DecisionAlgorithm::MaxFlow, false, &events);
        let m_on = run_plan(Max, &ov, &rates, DecisionAlgorithm::MaxFlow, true, &events);
        let m_off = run_plan(Max, &ov, &rates, DecisionAlgorithm::MaxFlow, false, &events);
        let k_on = run_plan(
            TopK::new(10),
            &ov,
            &rates,
            DecisionAlgorithm::MaxFlow,
            true,
            &events,
        );
        let k_off = run_plan(
            TopK::new(10),
            &ov,
            &rates,
            DecisionAlgorithm::MaxFlow,
            false,
            &events,
        );
        t.row(&[
            &format!("{ratio}"),
            &gain(s_on, s_off),
            &gain(m_on, m_off),
            &gain(k_on, k_off),
        ]);
    }
    println!("\nexpect: gains peak near w:r = 1 (>1x) and fade toward both extremes (≈1x).");
}

fn fig14c() {
    banner(
        "Figure 14(c)",
        "2-hop neighborhoods: overlay-dataflow vs all-push vs all-pull (1:1)",
    );
    let g = Dataset::LiveJournalLike.build(0.15 * scale(), 0xF14C);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::KHopIn(2), |_| true);
    let direct = Overlay::direct_from_bipartite(&ag);
    let (vnma, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    println!(
        "2-hop AG: {} edges (vs {} 1-hop); SI(VNMA) = {:.3}\n",
        ag.edge_count(),
        BipartiteGraph::build(&g, &Neighborhood::In, |_| true).edge_count(),
        vnma.sharing_index()
    );
    let rates = zipf_rates(n, 1.0, 1.0, 3);
    let events = events_for(n, 1.0, (20_000.0 * scale()) as usize);
    let t = Table::new(&["aggregate", "all-push", "dataflow overlay", "all-pull"]);
    macro_rules! row {
        ($name:literal, $agg:expr) => {{
            t.row(&[
                &$name,
                &format!(
                    "{:.0}",
                    run_plan(
                        $agg,
                        &direct,
                        &rates,
                        DecisionAlgorithm::AllPush,
                        false,
                        &events
                    )
                ),
                &format!(
                    "{:.0}",
                    run_plan(
                        $agg,
                        &vnma,
                        &rates,
                        DecisionAlgorithm::MaxFlow,
                        true,
                        &events
                    )
                ),
                &format!(
                    "{:.0}",
                    run_plan(
                        $agg,
                        &direct,
                        &rates,
                        DecisionAlgorithm::AllPull,
                        false,
                        &events
                    )
                ),
            ]);
        }};
    }
    row!("SUM", Sum);
    row!("MAX", Max);
    row!("TOP-K", TopK::new(10));
    println!("\nexpect: the overlay's relative win exceeds the 1-hop case (denser sharing).");
}

/// Write-ingestion comparison (beyond the paper): the same all-push
/// workload pushed through (1) the single-threaded reference engine event
/// by event, (2) the two-pool queueing-model engine event by event, and
/// (3) the sharded runtime in ingestion epochs, at several shard counts ×
/// the three partition strategies (hash, chunk-locality, edge-cut).
///
/// Emits `BENCH_fig14.json` (ops/s + cross-shard delta counters per
/// engine/strategy) so nightly CI tracks the perf trajectory across PRs.
fn fig14d() {
    banner(
        "Figure 14(d) [extension]",
        "write ingestion: per-event vs batched vs sharded (ops/s, all-push)",
    );
    let g = Dataset::LiveJournalLike.build(0.5 * scale(), 0xF14D);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let decisions = Decisions::all_push(&ov);
    // Floor the timed loop even at the smallest --quick scales: the
    // bench-check CI gate compares per-row ops/s ratios, and a
    // sub-millisecond measurement window would put scheduler noise inside
    // the 25% tolerance.
    let count = ((60_000.0 * scale()) as usize).max(16_000);
    let events: Vec<Event> = generate_events(
        n,
        &WorkloadConfig {
            events: count,
            write_to_read: 1e9, // pure write firehose
            seed: 0xF14D,
            ..Default::default()
        },
    );
    let batch = 4096;
    println!(
        "graph {} nodes / {} overlay edges; {} write events; batch = {batch}\n",
        g.node_count(),
        ov.edge_count(),
        events.len()
    );
    let t = Table::new(&["engine", "ops/s", "vs single", "cross-shard deltas"]);
    let mut rows: Vec<Json> = Vec::new();

    // (1) Single-threaded reference, event at a time (best of
    // GATE_REPEATS fresh engines, like every gated row below).
    let single = best_ops(|| {
        let core = EngineCore::new(Sum, Arc::clone(&ov), &decisions, WindowSpec::Tuple(1));
        let t0 = Instant::now();
        for (ts, e) in events.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                core.write(node, value, ts as u64);
            }
        }
        events.len() as f64 / t0.elapsed().as_secs_f64()
    });
    t.row(&[&"single-thread", &format!("{single:.0}"), &"1.00x", &"-"]);
    rows.push(Json::obj(vec![
        ("engine", Json::Str("single-thread".into())),
        ("ops_per_s", Json::Num(single)),
    ]));

    // (2) Two-pool queueing model, event at a time.
    {
        let ops = best_ops(|| {
            let core = Arc::new(EngineCore::new(
                Sum,
                Arc::clone(&ov),
                &decisions,
                WindowSpec::Tuple(1),
            ));
            let eng = ParallelEngine::new(Arc::clone(&core), ParallelConfig::default());
            let t0 = Instant::now();
            for (ts, e) in events.iter().enumerate() {
                if let Event::Write { node, value } = *e {
                    eng.submit_write(node, value, ts as u64);
                }
            }
            eng.drain();
            let ops = events.len() as f64 / t0.elapsed().as_secs_f64();
            eng.shutdown();
            ops
        });
        t.row(&[
            &"two-pool per-event",
            &format!("{ops:.0}"),
            &format!("{:.2}x", ops / single),
            &"-",
        ]);
        rows.push(Json::obj(vec![
            ("engine", Json::Str("two-pool".into())),
            ("ops_per_s", Json::Num(ops)),
        ]));
    }

    // (3) Sharded ingestion at several shard counts × all three partition
    // strategies. Edge-cut derives the map from the overlay's push
    // topology; its cross-shard delta column is the one to watch. The
    // delta counters are deterministic (routing depends only on the map
    // and the workload), so taking them from the last repeat is exact.
    for shards in [2usize, 4, 8] {
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Chunk {
                chunk_size: DEFAULT_CHUNK_SIZE,
            },
            PartitionStrategy::EdgeCut,
        ] {
            let batches = batch_events(&events, batch, 0);
            let mut cross = 0u64;
            let mut local = 0u64;
            let ops = best_ops(|| {
                let eng = ShardedEngine::new(
                    Sum,
                    Arc::clone(&ov),
                    &decisions,
                    WindowSpec::Tuple(1),
                    &ShardedConfig::builder()
                        .shards(shards)
                        .strategy(strategy)
                        .channel_capacity(1 << 12)
                        .rebalance(RebalancePolicy::default())
                        .build(),
                );
                let t0 = Instant::now();
                for b in &batches {
                    eng.ingest(b).unwrap();
                }
                eng.drain().unwrap();
                let ops = events.len() as f64 / t0.elapsed().as_secs_f64();
                cross = eng.cross_shard_deltas();
                local = eng.local_applies();
                eng.shutdown();
                ops
            });
            let sname = match strategy {
                PartitionStrategy::Hash => "hash",
                PartitionStrategy::Chunk { .. } => "chunk",
                PartitionStrategy::EdgeCut => "edge-cut",
            };
            t.row(&[
                &format!("sharded x{shards} ({sname})"),
                &format!("{ops:.0}"),
                &format!("{:.2}x", ops / single),
                &format!("{cross}"),
            ]);
            rows.push(Json::obj(vec![
                ("engine", Json::Str("sharded".into())),
                ("shards", Json::Num(shards as f64)),
                ("strategy", Json::Str(sname.into())),
                ("ops_per_s", Json::Num(ops)),
                ("cross_shard_deltas", Json::Num(cross as f64)),
                ("local_applies", Json::Num(local as f64)),
            ]));
        }
    }
    // (4) Sharded ingestion over the process transport: one
    // `eagr-shard-host` OS process per shard, length-prefixed frames over
    // Unix-domain sockets. The `processes` field records the live host
    // PID count so the artifact itself certifies the rows ran across
    // real process boundaries. These rows are coverage-gated (they must
    // keep appearing) but excluded from the throughput-ratio gate: on a
    // shared runner socket IPC scheduling noise swamps any sane
    // tolerance, and the transport's correctness is gated by the
    // differential tests in `tests/transport.rs` instead.
    match eagr::exec::transport::process::host_binary_path() {
        Err(e) => {
            println!("\nskipping sharded-proc rows (no shard-host binary): {e}");
            println!("build it with `cargo build --release -p eagr-shard-host` for full coverage.");
        }
        Ok(_) => {
            for shards in [2usize, 4] {
                let batches = batch_events(&events, batch, 0);
                let mut cross = 0u64;
                let mut processes = 0usize;
                let ops = best_ops(|| {
                    let eng = ShardedEngine::new(
                        Sum,
                        Arc::clone(&ov),
                        &decisions,
                        WindowSpec::Tuple(1),
                        &ShardedConfig::builder()
                            .shards(shards)
                            .strategy(PartitionStrategy::Hash)
                            .channel_capacity(1 << 12)
                            .rebalance(RebalancePolicy::default())
                            .transport(TransportKind::Process)
                            .build(),
                    );
                    processes = eng.host_pids().len();
                    let t0 = Instant::now();
                    for b in &batches {
                        eng.ingest(b).unwrap();
                    }
                    eng.drain().unwrap();
                    let ops = events.len() as f64 / t0.elapsed().as_secs_f64();
                    cross = eng.cross_shard_deltas();
                    eng.shutdown();
                    ops
                });
                t.row(&[
                    &format!("sharded-proc x{shards} (hash, {processes} procs)"),
                    &format!("{ops:.0}"),
                    &format!("{:.2}x", ops / single),
                    &format!("{cross}"),
                ]);
                rows.push(Json::obj(vec![
                    ("engine", Json::Str("sharded-proc".into())),
                    ("shards", Json::Num(shards as f64)),
                    ("strategy", Json::Str("hash".into())),
                    ("processes", Json::Num(processes as f64)),
                    ("ops_per_s", Json::Num(ops)),
                    ("cross_shard_deltas", Json::Num(cross as f64)),
                ]));
            }
        }
    }
    println!("\nexpect: sharded ingestion ≫ two-pool per-event (no per-PAO locks, no per-op");
    println!("channel round-trips); edge-cut ships the fewest cross-shard deltas, then chunk,");
    println!("then hash — identical answers in all cases; sharded-proc pays socket-frame");
    println!("codec + relay costs for process isolation.");
    write_json_artifact(
        "fig14",
        &Json::obj(vec![
            ("figure", Json::Str("fig14d".into())),
            ("scale", Json::Num(scale())),
            ("events", Json::Num(events.len() as f64)),
            ("batch", Json::Num(batch as f64)),
            ("rows", Json::Arr(rows)),
        ]),
    );
}

/// Read-service comparison (beyond the paper): mixed read/write streams at
/// read-heavy ratios over a **pull-heavy plan** (the workload ROADMAP item
/// (c) names — pull trees used to serialize on the submitting thread).
/// Reads are evaluated either on the caller thread (a slab read lock *per
/// pull input*) or shard-executed via [`ShardedEngine::read_batch`]
/// (routed through the shard inboxes; the owning worker snapshots its slab
/// once per batch and — thanks to the planner's read-locality pass that
/// co-locates each pull reader with its heaviest input shard — resolves
/// most pull inputs with plain indexed access; epoch-consistent answers).
/// Writes go through identical ingestion epochs in both modes, so the
/// delta is the read path alone.
///
/// Emits `BENCH_fig14_reads.json` so nightly CI tracks shard-executed read
/// throughput across PRs.
fn fig14e() {
    banner(
        "Figure 14(e) [extension]",
        "read mixes, pull-heavy plan: caller-thread reads vs shard-executed read_batch (ops/s)",
    );
    let g = Dataset::LiveJournalLike.build(0.25 * scale(), 0xF14E);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    // All-pull decisions (writers still push, §2.2.1): every read walks a
    // pull tree. The plan carries the hash partition plus the read-locality
    // co-location pass, so both engines below agree on shard ownership.
    let p = plan(
        Overlay::direct_from_bipartite(&ag),
        &Rates::uniform(n, 1.0),
        &CostModel::unit_sum(),
        &PlannerConfig {
            algorithm: DecisionAlgorithm::AllPull,
            split: false,
            writer_window: 1,
            push_amplification: 2.0,
        },
    )
    .with_partition(4, PartitionStrategy::Hash);
    // Event floor for the same reason as fig14d: keep the gated timing
    // windows well clear of scheduler-noise territory in --quick mode.
    let count = ((40_000.0 * scale()) as usize).max(16_000);
    let batch = 2048;
    println!(
        "graph {} nodes / {} overlay edges; {} events; batch = {batch}; 4 shards",
        g.node_count(),
        p.overlay.edge_count(),
        count
    );
    println!("(hash partition + pull readers co-located with their heaviest input shard)\n");
    let t = Table::new(&[
        "mix (r:w)",
        "read path",
        "ops/s",
        "vs caller",
        "reads served",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    // write_to_read = writes per read: 1.0 ⇒ 50/50, 1/9 ⇒ 90% reads.
    for (mix, w2r) in [("50/50", 1.0), ("90/10", 1.0 / 9.0)] {
        let events = generate_events(
            n,
            &WorkloadConfig {
                events: count,
                write_to_read: w2r,
                seed: 0xF14E ^ (w2r * 100.0) as u64,
                ..Default::default()
            },
        );
        // Pre-split every batch so both modes pay the same routing work.
        let split: Vec<(Vec<Event>, Vec<eagr::graph::NodeId>)> = batch_events(&events, batch, 0)
            .into_iter()
            .map(|b| {
                let writes: Vec<Event> =
                    b.events.iter().filter(|e| e.is_write()).copied().collect();
                let reads = b
                    .events
                    .iter()
                    .filter_map(|e| match *e {
                        Event::Read { node } => Some(node),
                        Event::Write { .. }
                        | Event::AddEdge { .. }
                        | Event::RemoveEdge { .. }
                        | Event::AddNode { .. }
                        | Event::RemoveNode { .. } => None,
                    })
                    .collect();
                (writes, reads)
            })
            .collect();
        let mut caller_ops = 0.0;
        for shard_reads in [false, true] {
            let mut reads_served = 0u64;
            let ops = best_ops(|| {
                let eng = ShardedEngine::from_plan(
                    &p,
                    Sum,
                    WindowSpec::Tuple(1),
                    &ShardedConfig::builder()
                        .shards(4)
                        .strategy(PartitionStrategy::Hash)
                        .channel_capacity(1 << 12)
                        .rebalance(RebalancePolicy::default())
                        .build(),
                );
                let t0 = Instant::now();
                let mut ts = 0u64;
                for (writes, reads) in &split {
                    eng.ingest_epoch_at(writes, ts).unwrap();
                    ts += writes.len() as u64;
                    if shard_reads {
                        std::hint::black_box(eng.read_batch(reads).unwrap());
                    } else {
                        for &v in reads {
                            std::hint::black_box(eng.read(v));
                        }
                    }
                }
                let ops = events.len() as f64 / t0.elapsed().as_secs_f64();
                reads_served = eng.reads_served();
                eng.shutdown();
                ops
            });
            let path = if shard_reads {
                "shard-executed"
            } else {
                "caller-thread"
            };
            if !shard_reads {
                caller_ops = ops;
            }
            t.row(&[
                &mix,
                &path,
                &format!("{ops:.0}"),
                &format!("{:.2}x", ops / caller_ops),
                &format!("{reads_served}"),
            ]);
            rows.push(Json::obj(vec![
                ("mix", Json::Str(mix.into())),
                ("write_to_read", Json::Num(w2r)),
                ("read_path", Json::Str(path.into())),
                ("ops_per_s", Json::Num(ops)),
                ("reads_served", Json::Num(reads_served as f64)),
            ]));
        }
    }
    println!("\nexpect: shard-executed read batches ≥ caller-thread reads even on one core");
    println!("(the worker snapshots its slab once per batch and reads co-located pull inputs");
    println!("with plain indexed access, vs one slab lock per pull input on the caller), and");
    println!("the gap grows with cores: read batches fan out across the shard workers.");
    write_json_artifact(
        "fig14_reads",
        &Json::obj(vec![
            ("figure", Json::Str("fig14e".into())),
            ("scale", Json::Num(scale())),
            ("events", Json::Num(count as f64)),
            ("batch", Json::Num(batch as f64)),
            ("shards", Json::Num(4.0)),
            ("rows", Json::Arr(rows)),
        ]),
    );
}

/// Live-rebalancing comparison (beyond the paper, §4.8 closed loop): a
/// Zipf hot-set **drift** workload ([`rotating_hot_set`]) over a map tuned
/// to phase-0 traffic. The frozen engine keeps the stale planning-time
/// map; the `RebalancePolicy`-enabled engine re-partitions itself from the
/// observed push counters every few ingestion epochs, live-migrating PAO
/// state under the epoch fence. The cross-shard delta counters per rotated
/// phase are the observable; answers are identical by construction
/// (`tests/sharding.rs` pins the ≥20% reduction and the differential).
///
/// Emits `BENCH_fig14_rebalance.json`; the `bench-check` CI gate asserts
/// the reduction invariant never regresses.
fn fig14f() {
    banner(
        "Figure 14(f) [extension]",
        "hot-set drift: frozen planning-time map vs live rebalancing (cross-shard deltas)",
    );
    let g = Dataset::LiveJournalLike.build(0.5 * scale(), 0xF14F);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let decisions = Decisions::all_push(&ov);
    // Event floor for the same reason as fig14d (per-phase timing rows
    // feed the bench-check gate).
    let per_phase = ((20_000.0 * scale()) as usize).max(8_000);
    let phases = rotating_hot_set(
        n,
        &WorkloadConfig {
            events: per_phase,
            write_to_read: 1e9,
            exponent: 1.2,
            seed: 0xF14F,
            ..Default::default()
        },
        4,
    );
    // ~10 ingestion epochs per phase at any scale, so the every-2-epochs
    // policy gets several in-phase adaptation points even in --quick mode.
    let batch = (per_phase / 10).max(128);
    let shards = 4;
    println!(
        "graph {} nodes / {} overlay edges; {} phases x {} write events; batch = {batch}; {shards} shards\n",
        g.node_count(),
        ov.edge_count(),
        phases.len(),
        per_phase,
    );
    // Tune the starting map to phase-0 observed traffic: this *is* the
    // planning-time map — perfect for the rates it saw, stale the moment
    // the hot set rotates.
    let stale_map = {
        let tuner = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &decisions,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(shards)
                .strategy(PartitionStrategy::EdgeCut)
                .channel_capacity(1 << 12)
                .rebalance(RebalancePolicy {
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        for b in batch_events(&phases[0], batch, 0) {
            tuner.ingest_epoch(&b).unwrap();
        }
        tuner.rebalance().unwrap();
        let map = tuner.partition();
        tuner.shutdown();
        map
    };
    let t = Table::new(&["engine", "phase", "cross-shard deltas", "ops/s"]);
    let mut rows: Vec<Json> = Vec::new();
    for (mode, policy) in [
        ("frozen", RebalancePolicy::manual()),
        (
            "rebalance",
            RebalancePolicy {
                every_epochs: 2,
                min_cut_gain: 0.01,
                max_move_fraction: 0.5,
                ..RebalancePolicy::default()
            },
        ),
    ] {
        // Repeat the whole phase sequence GATE_REPEATS times with fresh
        // engines and keep per-phase best ops/s (the gated observable).
        // The delta counters and rebalance decisions are deterministic —
        // every repeat replays identically — so counters come from the
        // last repeat.
        let mut phase_cross = vec![0u64; phases.len()];
        let mut phase_ops = vec![f64::MIN; phases.len()];
        let mut rebalances = 0u64;
        let mut migrated = 0u64;
        for _ in 0..GATE_REPEATS {
            let eng = ShardedEngine::with_partition(
                Sum,
                Arc::clone(&ov),
                &decisions,
                WindowSpec::Tuple(1),
                stale_map.clone(),
                &ShardedConfig::builder()
                    .shards(shards)
                    .strategy(PartitionStrategy::EdgeCut)
                    .channel_capacity(1 << 12)
                    .rebalance(policy)
                    .build(),
            );
            let mut ts = 0u64;
            for (k, phase) in phases.iter().enumerate() {
                let c0 = eng.cross_shard_deltas();
                let t0 = Instant::now();
                for b in batch_events(phase, batch, ts) {
                    eng.ingest_epoch(&b).unwrap();
                }
                let ops = phase.len() as f64 / t0.elapsed().as_secs_f64();
                ts += phase.len() as u64;
                phase_cross[k] = eng.cross_shard_deltas() - c0;
                phase_ops[k] = phase_ops[k].max(ops);
            }
            rebalances = eng.rebalances();
            migrated = eng.nodes_migrated();
            eng.shutdown();
        }
        for (k, (&cross, &ops)) in phase_cross.iter().zip(&phase_ops).enumerate() {
            t.row(&[
                &mode,
                &format!("{k}"),
                &format!("{cross}"),
                &format!("{ops:.0}"),
            ]);
            rows.push(Json::obj(vec![
                ("engine", Json::Str(mode.into())),
                ("phase", Json::Num(k as f64)),
                ("cross_shard_deltas", Json::Num(cross as f64)),
                ("ops_per_s", Json::Num(ops)),
            ]));
        }
        if mode == "rebalance" {
            println!("  ({rebalances} rebalances committed, {migrated} nodes migrated)");
            rows.push(Json::obj(vec![
                ("engine", Json::Str("rebalance-summary".into())),
                ("rebalances", Json::Num(rebalances as f64)),
                ("nodes_migrated", Json::Num(migrated as f64)),
            ]));
        }
    }
    // During-migration ingest throughput: the observable the two-phase
    // protocol exists for. Same rotated-phase workload, once undisturbed
    // and once with a background thread ping-ponging explicit migrations
    // between the stale map and a rotated map for the whole run. The old
    // protocol held the epoch gate exclusively for each migration's full
    // drain+copy+flip, stalling every writer; two-phase fences only the
    // flip, so ingestion should run near steady-state speed even with
    // migrations committing back to back.
    let alt_map = {
        let mut m = stale_map.clone();
        for s in m.of.iter_mut() {
            s.0 = (s.0 + 1) % shards as u32;
        }
        m
    };
    let drift: Vec<Event> = phases[1..].iter().flatten().cloned().collect();
    let bench_ingest = |migrate: bool| -> (f64, u64) {
        let mut best = f64::MIN;
        let mut commits = 0u64;
        for _ in 0..GATE_REPEATS {
            let eng = ShardedEngine::with_partition(
                Sum,
                Arc::clone(&ov),
                &decisions,
                WindowSpec::Tuple(1),
                stale_map.clone(),
                &ShardedConfig::builder()
                    .shards(shards)
                    .strategy(PartitionStrategy::EdgeCut)
                    .channel_capacity(1 << 12)
                    .rebalance(RebalancePolicy::manual())
                    .build(),
            );
            let done = std::sync::atomic::AtomicBool::new(false);
            let mut ops = 0.0;
            // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
            std::thread::scope(|scope| {
                if migrate {
                    scope.spawn(|| {
                        while !done.load(std::sync::atomic::Ordering::Acquire) {
                            eng.migrate_to(&alt_map).unwrap();
                            eng.migrate_to(&stale_map).unwrap();
                        }
                    });
                }
                let t0 = Instant::now();
                for b in batch_events(&drift, batch, 0) {
                    eng.ingest_epoch(&b).unwrap();
                }
                ops = drift.len() as f64 / t0.elapsed().as_secs_f64();
                done.store(true, std::sync::atomic::Ordering::Release);
            });
            commits = eng.rebalances();
            eng.shutdown();
            best = best.max(ops);
        }
        (best, commits)
    };
    let (steady_ops, _) = bench_ingest(false);
    let (during_ops, migrations) = bench_ingest(true);
    println!();
    let t2 = Table::new(&["ingest", "ops/s", "vs steady"]);
    t2.row(&[
        &"steady (no migration)",
        &format!("{steady_ops:.0}"),
        &"1.00",
    ]);
    t2.row(&[
        &"during back-to-back migrations",
        &format!("{during_ops:.0}"),
        &format!("{:.2}", during_ops / steady_ops),
    ]);
    println!("  ({migrations} migrations committed while ingesting)");
    rows.push(Json::obj(vec![
        ("engine", Json::Str("migration-concurrency".into())),
        ("steady_ingest_ops", Json::Num(steady_ops)),
        ("during_migration_ingest_ops", Json::Num(during_ops)),
        ("migrations_committed", Json::Num(migrations as f64)),
    ]));
    println!("\nexpect: both engines ship the same deltas in phase 0 (same starting map);");
    println!("from phase 1 on, the frozen stale map keeps paying the rotated hot set's full");
    println!("cross-shard cost while the policy-driven engine re-tunes and ships far fewer;");
    println!("and during-migration ingest stays near steady-state (the fence is flip-only).");
    write_json_artifact(
        "fig14_rebalance",
        &Json::obj(vec![
            ("figure", Json::Str("fig14f".into())),
            ("scale", Json::Num(scale())),
            ("events_per_phase", Json::Num(per_phase as f64)),
            ("phases", Json::Num(phases.len() as f64)),
            ("batch", Json::Num(batch as f64)),
            ("shards", Json::Num(shards as f64)),
            ("rows", Json::Arr(rows)),
        ]),
    );
}

fn main() {
    // `--only <letters>` restricts to a subset of the sub-figures (e.g.
    // `--only def` runs just the machine-readable extension benches) — how
    // the PR-gating bench-check CI job avoids paying for fig14(a–c).
    let args: Vec<String> = std::env::args().collect();
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    let run = |letter: char| only.as_deref().is_none_or(|s| s.contains(letter));
    if run('a') {
        fig14a();
    }
    if run('b') {
        fig14b();
    }
    if run('c') {
        fig14c();
    }
    if run('d') {
        fig14d();
    }
    if run('e') {
        fig14e();
    }
    if run('f') {
        fig14f();
    }
}
