//! Fig 11 — (a) cumulative distribution of overlay depth for IOB vs VNM_A,
//! and (b) sharing index vs the number of negative edges allowed per
//! insertion in VNM_N.
//!
//! Paper shape: (a) IOB overlays are markedly deeper (LiveJournal: mean
//! 4.66 vs 3.44), which is why their end-to-end throughput lags despite
//! better compression; (b) allowing negative edges raises SI substantially
//! with saturation around 3–4.

use eagr::gen::Dataset;
use eagr::graph::{BipartiteGraph, Neighborhood};
use eagr::overlay::{build_iob, build_vnm, metrics, IobConfig, VnmConfig, VnmVariant};
use eagr_bench::{banner, f, scale, sum_props, Table};

fn main() {
    banner(
        "Figure 11(a)",
        "CDF of overlay depth: IOB vs VNMA (LiveJournal-like)",
    );
    let g = Dataset::LiveJournalLike.build(0.5 * scale(), 0xF1611);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);

    let (ov_a, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    let (ov_i, _) = build_iob(&ag, &IobConfig::default());
    let t = Table::new(&["algorithm", "mean depth", "depth CDF (depth:cum%)"]);
    for (name, ov) in [("VNMA", &ov_a), ("IOB", &ov_i)] {
        let cdf = metrics::depth_cdf(ov);
        let cdf_s = cdf
            .iter()
            .map(|&(d, c)| format!("{d}:{:.0}%", c * 100.0))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(&[&name, &f(metrics::average_depth(ov)), &cdf_s]);
    }
    println!("\nexpect: IOB mean depth > VNMA mean depth.");

    banner(
        "Figure 11(b)",
        "sharing index vs negative edges allowed per insertion (k2), VNMN",
    );
    let t = Table::new(&["graph", "k2=0", "k2=1", "k2=2", "k2=3", "k2=4", "k2=5"]);
    for ds in [
        Dataset::LiveJournalLike,
        Dataset::GplusLike,
        Dataset::Eu2005Like,
    ] {
        let g = ds.build(0.35 * scale(), 0xF1611B);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let mut cells = vec![ds.name().to_string()];
        for k2 in 0..=5usize {
            let mut cfg = VnmConfig::vnmn(sum_props());
            cfg.variant = VnmVariant::Negative {
                max_paths: 2,
                max_neg_per_path: k2,
            };
            cfg.iterations = 6;
            let (ov, _) = build_vnm(&ag, &cfg);
            cells.push(f(ov.sharing_index()));
        }
        t.print_row(&cells);
    }
    println!("\nexpect: SI grows with k2 and saturates by k2 ≈ 3–4.");
}
