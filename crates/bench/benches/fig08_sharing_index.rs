//! Fig 8 — sharing index per iteration for the four overlay construction
//! algorithms on four graphs.
//!
//! Paper shape: IOB reaches the most compact overlay in the fewest
//! iterations; VNM_N and VNM_D beat VNM_A; web graphs (eu2005/uk2002) reach
//! far higher sharing indexes than social graphs (livejournal/gplus).

use eagr::gen::Dataset;
use eagr::graph::{BipartiteGraph, Neighborhood};
use eagr::overlay::{build_iob, build_vnm, IobConfig, IterationStats, VnmConfig};
use eagr_bench::{banner, f, max_props, scale, sum_props, Table};

fn series(stats: &[IterationStats]) -> String {
    stats
        .iter()
        .map(|s| format!("{:.3}", s.sharing_index))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    banner(
        "Figure 8",
        "average sharing index per iteration (VNMA, VNMN, VNMD, IOB × 4 graphs)",
    );
    let sc = 0.4 * scale();
    for ds in Dataset::all() {
        let g = ds.build(sc, 0xF168);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        println!(
            "\n[{}] {} nodes, {} bipartite edges",
            ds.name(),
            g.node_count(),
            ag.edge_count()
        );
        let t = Table::new(&["algorithm", "final SI", "SI per iteration"]);
        let mut cfg_a = VnmConfig::vnma(sum_props());
        cfg_a.iterations = 8;
        let (ov, st) = build_vnm(&ag, &cfg_a);
        t.row(&[&"VNMA", &f(ov.sharing_index()), &series(&st)]);
        let mut cfg_n = VnmConfig::vnmn(sum_props());
        cfg_n.iterations = 8;
        let (ov, st) = build_vnm(&ag, &cfg_n);
        t.row(&[&"VNMN", &f(ov.sharing_index()), &series(&st)]);
        let mut cfg_d = VnmConfig::vnmd(max_props());
        cfg_d.iterations = 8;
        let (ov, st) = build_vnm(&ag, &cfg_d);
        t.row(&[&"VNMD", &f(ov.sharing_index()), &series(&st)]);
        let (ov, st) = build_iob(
            &ag,
            &IobConfig {
                iterations: 4,
                ..Default::default()
            },
        );
        t.row(&[&"IOB", &f(ov.sharing_index()), &series(&st)]);
    }
    println!("\nexpect: IOB most compact & fastest to converge; VNMN/VNMD > VNMA; web ≫ social.");
}
