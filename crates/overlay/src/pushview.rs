//! Weighted push-edge view of an overlay — the affinity input of the
//! edge-cut shard partitioner.
//!
//! The sharded runtime's dominant cost is cross-shard delta traffic: every
//! push edge whose endpoints live on different shards turns a plain slab
//! write into a channel message. [`PushEdgeView`] projects the overlay down
//! to exactly the edges the execution cascade follows — node → push
//! consumer — weighted by how many deltas are expected to traverse them, so
//! [`eagr_graph::partition::edge_cut_partition`] can co-locate partial
//! aggregation nodes with their consumers (§2.2's partial-aggregation
//! sharing, kept worker-local the way differential dataflow keeps shared
//! arrangements off the cross-worker channels).
//!
//! The view is symmetric (each edge listed from both endpoints): cut cost
//! does not depend on edge direction, and the streaming assigner scores
//! placed neighbors regardless of which endpoint arrived first.

use crate::overlay::{Overlay, OverlayId, OverlayKind};
use eagr_graph::{AffinityGraph, Partition};

/// Symmetric weighted adjacency over the overlay arena, restricted to
/// delta-carrying push edges.
#[derive(Clone, Debug)]
pub struct PushEdgeView {
    adj: Vec<Vec<(u32, f32)>>,
    edges: usize,
    total_weight: f64,
}

impl PushEdgeView {
    /// The push topology under `is_push`, with every edge weighted by the
    /// source's fan-out share of one delta: a uniform "every writer is
    /// equally hot" prior. Deltas flow along `n → t` only when `t` is
    /// push-annotated (the cascade's rule) and `n` itself receives deltas
    /// (`n` is push — writers always are, §2.2.1).
    pub fn new(overlay: &Overlay, is_push: impl Fn(OverlayId) -> bool) -> Self {
        Self::weighted(overlay, is_push, |_| 1.0)
    }

    /// The push topology with per-node delta-rate hints: `rate_of(n)` is
    /// the expected deltas per unit time *emitted* by `n` (e.g. the
    /// planner's propagated push frequency `fh`, or observed push counters
    /// at runtime). Every outgoing push edge of `n` carries that rate.
    pub fn weighted(
        overlay: &Overlay,
        is_push: impl Fn(OverlayId) -> bool,
        rate_of: impl Fn(OverlayId) -> f64,
    ) -> Self {
        let n = overlay.node_count();
        let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        let mut edges = 0;
        let mut total_weight = 0.0;
        for src in overlay.ids() {
            if !is_push(src) && !matches!(overlay.kind(src), OverlayKind::Writer(_)) {
                continue; // pull non-writers emit no deltas
            }
            let w = rate_of(src).max(0.0) as f32;
            if w == 0.0 {
                continue;
            }
            for &(dst, _sign) in overlay.outputs(src) {
                if !is_push(dst) {
                    continue; // the cascade never ships deltas to pull nodes
                }
                adj[src.idx()].push((dst.0, w));
                adj[dst.idx()].push((src.0, w));
                edges += 1;
                total_weight += w as f64;
            }
        }
        Self {
            adj,
            edges,
            total_weight,
        }
    }

    /// The push topology weighted by **observed** per-node delta activity:
    /// `applied[n.idx()]` is the number of delta ops actually applied at
    /// `n` over the observation window (the engine's §4.8 push counters),
    /// which is exactly the number of deltas `n` re-emitted along each of
    /// its outgoing push edges. This is the affinity input of *live* shard
    /// rebalancing — real traffic, not the planning-time `fh` prior.
    ///
    /// Nodes with zero observed activity keep a small floor weight
    /// (`1e-3`) so pure structure still guides the partitioner for parts
    /// of the overlay the window never touched.
    ///
    /// # Panics
    /// Panics if `applied` does not cover every overlay node.
    pub fn observed(
        overlay: &Overlay,
        is_push: impl Fn(OverlayId) -> bool,
        applied: &[u64],
    ) -> Self {
        assert_eq!(
            applied.len(),
            overlay.node_count(),
            "observed counters must cover every overlay node"
        );
        Self::weighted(overlay, is_push, |n| {
            let c = applied[n.idx()] as f64;
            if c > 0.0 {
                c
            } else {
                1e-3
            }
        })
    }

    /// The observed push topology *plus* pull-affinity edges: on top of
    /// [`observed`](Self::observed), every live pull node `n` that actually
    /// served reads (`pulled[n.idx()] > 0`) gains a symmetric edge to each
    /// of its inputs, weighted by its read count. A pull read walks the
    /// node's inputs on every evaluation, so a pull-heavy reader placed
    /// away from its inputs pays a cross-shard snapshot per input per read
    /// — folding `reads_served` into the affinity view lets the §4.8
    /// rebalancer migrate such readers toward their inputs.
    ///
    /// # Panics
    /// Panics if `applied` or `pulled` does not cover every overlay node.
    pub fn observed_with_reads(
        overlay: &Overlay,
        is_push: impl Fn(OverlayId) -> bool,
        applied: &[u64],
        pulled: &[u64],
    ) -> Self {
        assert_eq!(
            pulled.len(),
            overlay.node_count(),
            "pull counters must cover every overlay node"
        );
        let mut view = Self::observed(overlay, &is_push, applied);
        for n in overlay.ids() {
            if is_push(n) {
                continue; // push reads are local finalizes; no input walk
            }
            let w = pulled[n.idx()] as f32;
            if w == 0.0 {
                continue;
            }
            for &(src, _sign) in overlay.inputs(n) {
                view.adj[n.idx()].push((src.0, w));
                view.adj[src.idx()].push((n.0, w));
                view.edges += 1;
                view.total_weight += w as f64;
            }
        }
        view
    }

    /// Number of (directed) push edges in the view.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Sum of all edge weights — the delta volume a worst-case partition
    /// (everything cut) would ship.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The share of delta volume `partition` ships across shards:
    /// `cut_weight / total_weight`, in `[0, 1]`. `0` when the view has no
    /// edges.
    pub fn cut_fraction(&self, partition: &Partition) -> f64 {
        if self.total_weight == 0.0 {
            0.0
        } else {
            partition.cut_weight(self) / self.total_weight
        }
    }
}

impl AffinityGraph for PushEdgeView {
    fn node_count(&self) -> usize {
        self.adj.len()
    }

    #[inline]
    fn neighbors(&self, idx: usize) -> &[(u32, f32)] {
        &self.adj[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_graph::{
        edge_cut_partition, paper_example_graph, BipartiteGraph, EdgeCutConfig, Neighborhood,
        Partitioner,
    };

    fn paper_overlay() -> Overlay {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        Overlay::direct_from_bipartite(&ag)
    }

    #[test]
    fn all_push_view_mirrors_overlay_edges() {
        let ov = paper_overlay();
        let view = PushEdgeView::new(&ov, |_| true);
        assert_eq!(view.node_count(), ov.node_count());
        assert_eq!(view.edge_count(), ov.edge_count());
        assert_eq!(view.total_weight(), ov.edge_count() as f64);
    }

    #[test]
    fn pull_consumers_are_excluded() {
        let ov = paper_overlay();
        // Nothing push ⇒ no delta ever ships ⇒ empty view.
        let view = PushEdgeView::new(&ov, |_| false);
        assert_eq!(view.edge_count(), 0);
        assert_eq!(view.total_weight(), 0.0);
    }

    #[test]
    fn weights_follow_rate_hints() {
        let ov = paper_overlay();
        let hot = ov.writers().next().unwrap().0;
        let view = PushEdgeView::weighted(&ov, |_| true, |n| if n == hot { 10.0 } else { 1.0 });
        let fan_out = ov.outputs(hot).len() as f64;
        let rest = (ov.edge_count() as f64) - fan_out;
        assert!((view.total_weight() - (rest + 10.0 * fan_out)).abs() < 1e-6);
    }

    #[test]
    fn observed_view_weights_follow_counters() {
        let ov = paper_overlay();
        let n = ov.node_count();
        let hot = ov.writers().next().unwrap().0;
        let mut applied = vec![0u64; n];
        applied[hot.idx()] = 25;
        let view = PushEdgeView::observed(&ov, |_| true, &applied);
        // The hot writer's fan-out carries its counter; everyone else sits
        // at the structural floor.
        let fan_out = ov.outputs(hot).len() as f64;
        let rest = (ov.edge_count() as f64 - fan_out) * 1e-3;
        assert!(
            (view.total_weight() - (25.0 * fan_out + rest)).abs() < 1e-6,
            "total {} vs expected {}",
            view.total_weight(),
            25.0 * fan_out + rest
        );
        // The observed view stays a valid affinity input: a derived
        // edge-cut covers every node and scores within [0, 1].
        let ec = edge_cut_partition(&view, 3, &EdgeCutConfig::default());
        assert_eq!(ec.len(), n);
        let f = view.cut_fraction(&ec);
        assert!((0.0..=1.0).contains(&f), "cut fraction {f}");
    }

    #[test]
    fn read_affinity_adds_pull_input_edges() {
        let ov = paper_overlay();
        let n = ov.node_count();
        // One pull reader served reads; everything else is push.
        let (reader, _) = ov.readers().next().unwrap();
        let is_push = |id: OverlayId| id != reader;
        let applied = vec![1u64; n];
        let mut pulled = vec![0u64; n];
        pulled[reader.idx()] = 40;
        let base = PushEdgeView::observed(&ov, is_push, &applied);
        let view = PushEdgeView::observed_with_reads(&ov, is_push, &applied, &pulled);
        // Each of the reader's inputs gains one symmetric affinity edge
        // weighted by the read count.
        let fan_in = ov.inputs(reader).len();
        assert_eq!(view.edge_count(), base.edge_count() + fan_in);
        assert!(
            (view.total_weight() - (base.total_weight() + 40.0 * fan_in as f64)).abs() < 1e-6,
            "read weight must fold into the affinity view"
        );
        // A reader that served no reads adds nothing.
        let idle = PushEdgeView::observed_with_reads(&ov, is_push, &applied, &vec![0u64; n]);
        assert_eq!(idle.edge_count(), base.edge_count());
    }

    #[test]
    #[should_panic(expected = "pull counters must cover")]
    fn read_affinity_rejects_short_pull_slices() {
        let ov = paper_overlay();
        let applied = vec![0u64; ov.node_count()];
        let _ = PushEdgeView::observed_with_reads(&ov, |_| true, &applied, &[7]);
    }

    #[test]
    #[should_panic(expected = "observed counters must cover")]
    fn observed_view_rejects_short_counter_slices() {
        let ov = paper_overlay();
        let _ = PushEdgeView::observed(&ov, |_| true, &[1, 2, 3]);
    }

    #[test]
    fn view_is_symmetric() {
        let ov = paper_overlay();
        let view = PushEdgeView::new(&ov, |_| true);
        for v in 0..view.node_count() {
            for &(u, w) in view.neighbors(v) {
                assert!(
                    view.neighbors(u as usize)
                        .iter()
                        .any(|&(b, bw)| b as usize == v && bw == w),
                    "edge {v}↔{u} missing its mirror"
                );
            }
        }
    }

    #[test]
    fn cut_fraction_orders_partitions_sensibly() {
        let ov = paper_overlay();
        let view = PushEdgeView::new(&ov, |_| true);
        let single = Partitioner::hash(1).partition(ov.node_count());
        assert_eq!(view.cut_fraction(&single), 0.0, "one shard cuts nothing");
        let hash = Partitioner::hash(4).partition(ov.node_count());
        let ec = edge_cut_partition(&view, 4, &EdgeCutConfig::default());
        assert!(view.cut_fraction(&ec) <= view.cut_fraction(&hash) + 1e-9);
        assert!(view.cut_fraction(&hash) <= 1.0);
    }
}
