//! The aggregation overlay graph and its construction algorithms (paper §3).
//!
//! * [`Overlay`] — the pre-compiled structure of writers, readers, and
//!   partial aggregation nodes with signed (positive/negative) edges
//!   (§2.2.1).
//! * [`shingle`] — min-hash reader ordering used to group similar readers.
//! * [`fptree`] — FP-tree biclique mining with negative-edge (`S'`) and
//!   mined-edge (`S_mined`) extensions (§3.2.1, §3.2.3, §3.2.4).
//! * [`vnm`] — the VNM / VNM_A / VNM_N / VNM_D construction family.
//! * [`iob`] — Incremental Overlay Building via greedy exact set cover
//!   (§3.2.5), also the engine behind dynamic maintenance.
//! * [`dynamic`] — incremental overlay updates on data-graph changes (§3.3).
//! * [`extend`](mod@extend) — live overlay extension + per-node refcounts
//!   for multi-query attach/detach (§3 sharing at runtime).
//! * [`metrics`] — sharing index, depth CDFs, construction cost accounting.
//! * [`pushview`] — the weighted push-edge affinity view consumed by the
//!   edge-cut shard partitioner.
//! * [`validate`](mod@validate) — net-contribution validation of the
//!   §2.2.1 invariant.

#![forbid(unsafe_code)]

pub mod dynamic;
pub mod extend;
pub mod fptree;
pub mod iob;
pub mod metrics;
pub mod overlay;
pub mod pushview;
pub mod shingle;
pub mod validate;
pub mod vnm;

pub use dynamic::{DynamicConfig, DynamicOverlay};
pub use extend::{extend_with_readers, used_subtree, ExtendOutcome, RefCounts};
pub use iob::{build_iob, IobConfig, IobState};
pub use metrics::IterationStats;
pub use overlay::{Overlay, OverlayId, OverlayKind, SignedEdge};
pub use pushview::PushEdgeView;
pub use validate::{validate, validate_against, validate_vs_bipartite, ValidationError};
pub use vnm::{build_vnm, VnmConfig, VnmVariant};
