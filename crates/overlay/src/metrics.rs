//! Overlay metrics: sharing index trajectories, depth distributions, and
//! construction-cost accounting (Figs 8–11).

use crate::overlay::{Overlay, OverlayId, OverlayKind};

/// Per-iteration statistics emitted by the construction algorithms — the
/// series behind Fig 8 (sharing index), Fig 10a (running time), and Fig 10b
/// (memory).
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Overlay edge count after the iteration.
    pub edges: usize,
    /// Sharing index after the iteration.
    pub sharing_index: f64,
    /// Bicliques (partial nodes) created this iteration.
    pub bicliques: usize,
    /// Total edges saved this iteration.
    pub benefit: i64,
    /// Reader-group size used this iteration (VNM family).
    pub chunk_size: usize,
    /// Wall time of this iteration, milliseconds.
    pub elapsed_ms: f64,
    /// Wall time since construction started, milliseconds.
    pub cumulative_ms: f64,
    /// Approximate overlay heap footprint after the iteration, bytes.
    pub memory_bytes: usize,
}

/// Overlay depth of every reader: the length (in edges) of the longest path
/// from any of its input writers (Fig 11a). A reader fed directly by
/// writers has depth 1.
pub fn reader_depths(ov: &Overlay) -> Vec<(OverlayId, u32)> {
    let order = ov.topo_order();
    let mut depth = vec![0u32; ov.node_count()];
    for &n in &order {
        let d = ov
            .inputs(n)
            .iter()
            .map(|&(f, _)| depth[f.idx()] + 1)
            .max()
            .unwrap_or(0);
        depth[n.idx()] = d;
    }
    ov.readers().map(|(id, _)| (id, depth[id.idx()])).collect()
}

/// Cumulative distribution of reader depths: `(depth, fraction of readers
/// with depth ≤ depth)` — the curve of Fig 11(a).
pub fn depth_cdf(ov: &Overlay) -> Vec<(u32, f64)> {
    let mut depths: Vec<u32> = reader_depths(ov).into_iter().map(|(_, d)| d).collect();
    if depths.is_empty() {
        return Vec::new();
    }
    depths.sort_unstable();
    let n = depths.len() as f64;
    let mut cdf = Vec::new();
    let mut i = 0;
    while i < depths.len() {
        let d = depths[i];
        let mut j = i;
        while j < depths.len() && depths[j] == d {
            j += 1;
        }
        cdf.push((d, j as f64 / n));
        i = j;
    }
    cdf
}

/// Mean reader depth (the paper reports 4.66 for IOB vs 3.44 for VNM_A on
/// LiveJournal).
pub fn average_depth(ov: &Overlay) -> f64 {
    let depths = reader_depths(ov);
    if depths.is_empty() {
        return 0.0;
    }
    depths.iter().map(|&(_, d)| d as f64).sum::<f64>() / depths.len() as f64
}

/// Count of negative edges in the overlay.
pub fn negative_edge_count(ov: &Overlay) -> usize {
    ov.ids()
        .map(|n| {
            ov.inputs(n)
                .iter()
                .filter(|&&(_, s)| s.is_negative())
                .count()
        })
        .sum()
}

/// Breakdown of overlay node counts by kind: `(writers, readers, partials)`.
pub fn node_breakdown(ov: &Overlay) -> (usize, usize, usize) {
    let mut w = 0;
    let mut r = 0;
    let mut p = 0;
    for n in ov.ids() {
        match ov.kind(n) {
            OverlayKind::Writer(_) => w += 1,
            OverlayKind::Reader(_) => r += 1,
            OverlayKind::Partial => p += 1,
        }
    }
    (w, r, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::Sign;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood, NodeId};

    fn direct_paper_overlay() -> Overlay {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        Overlay::direct_from_bipartite(&ag)
    }

    #[test]
    fn direct_overlay_depth_is_one() {
        let ov = direct_paper_overlay();
        for (_, d) in reader_depths(&ov) {
            assert_eq!(d, 1);
        }
        assert_eq!(average_depth(&ov), 1.0);
        assert_eq!(depth_cdf(&ov), vec![(1, 1.0)]);
    }

    #[test]
    fn partial_node_increases_depth() {
        let mut ov = direct_paper_overlay();
        let w: Vec<_> = ov.writers().map(|(id, _)| id).collect();
        let p = ov.add_partial(&w[..2]);
        let r = ov.reader(NodeId(6)).unwrap();
        ov.add_edge(p, r, Sign::Pos);
        let depths = reader_depths(&ov);
        let d6 = depths.iter().find(|&&(id, _)| id == r).unwrap().1;
        assert_eq!(d6, 2);
    }

    #[test]
    fn multi_level_depth() {
        let mut ov = direct_paper_overlay();
        let w: Vec<_> = ov.writers().map(|(id, _)| id).collect();
        let p1 = ov.add_partial(&w[..2]);
        let p2 = ov.add_partial(&[p1, w[2]]);
        let r = ov.reader(NodeId(6)).unwrap();
        ov.add_edge(p2, r, Sign::Pos);
        let d = reader_depths(&ov)
            .iter()
            .find(|&&(id, _)| id == r)
            .unwrap()
            .1;
        assert_eq!(d, 3);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut ov = direct_paper_overlay();
        let w: Vec<_> = ov.writers().map(|(id, _)| id).collect();
        let p = ov.add_partial(&w[..3]);
        let r = ov.reader(NodeId(5)).unwrap();
        ov.add_edge(p, r, Sign::Pos);
        let cdf = depth_cdf(&ov);
        for pair in cdf.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_edges_counted() {
        let mut ov = direct_paper_overlay();
        assert_eq!(negative_edge_count(&ov), 0);
        let w = ov.writer(NodeId(0)).unwrap();
        let r = ov.reader(NodeId(0)).unwrap();
        ov.add_edge(w, r, Sign::Neg);
        assert_eq!(negative_edge_count(&ov), 1);
    }

    #[test]
    fn breakdown() {
        let ov = direct_paper_overlay();
        assert_eq!(node_breakdown(&ov), (6, 7, 0));
    }
}
