//! Min-hash shingle ordering of readers (paper §3.2.1).
//!
//! VNM groups readers before mining so that readers with similar input lists
//! land in the same chunk: "Shingle of a reader is effectively a signature of
//! its input writers. If two readers have very similar adjacency lists, then
//! with high probability, their shingle values will also be the same."
//!
//! A shingle is the minimum of a seeded hash over the reader's items; we
//! compute `num_shingles` of them per reader and sort readers
//! lexicographically by their shingle vectors.

use eagr_util::SplitMix64;

#[inline]
fn seeded_hash(seed: u64, item: u32) -> u64 {
    // One round of SplitMix64's finalizer keyed by the seed — cheap and
    // well-mixed, which is all min-hashing needs.
    let mut z = (item as u64).wrapping_add(seed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Min-hash signature of one item list.
pub fn shingles(items: &[u32], num_shingles: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..num_shingles)
        .map(|_| {
            let s = rng.next_u64();
            items
                .iter()
                .map(|&it| seeded_hash(s, it))
                .min()
                .unwrap_or(u64::MAX)
        })
        .collect()
}

/// Order readers (given their item lists) by lexicographic shingle
/// signature. Returns the permutation of reader indices.
pub fn shingle_order(lists: &[Vec<u32>], num_shingles: usize, seed: u64) -> Vec<usize> {
    let mut keyed: Vec<(Vec<u64>, usize)> = lists
        .iter()
        .enumerate()
        .map(|(i, l)| (shingles(l, num_shingles, seed), i))
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_lists_identical_shingles() {
        let a = shingles(&[1, 2, 3], 3, 42);
        let b = shingles(&[3, 2, 1], 3, 42);
        assert_eq!(a, b, "shingles are set signatures, order-independent");
    }

    #[test]
    fn similar_lists_tend_to_share_shingles() {
        // Jaccard-similar lists share each min-hash with probability equal
        // to their similarity; with 90% overlap most shingles match.
        let base: Vec<u32> = (0..100).collect();
        let mut similar = base.clone();
        similar[0] = 1000; // 99/101 Jaccard
        let disjoint: Vec<u32> = (200..300).collect();
        let s_base = shingles(&base, 8, 7);
        let s_sim = shingles(&similar, 8, 7);
        let s_dis = shingles(&disjoint, 8, 7);
        let matches = |a: &[u64], b: &[u64]| a.iter().zip(b).filter(|(x, y)| x == y).count();
        assert!(matches(&s_base, &s_sim) >= 6);
        assert_eq!(matches(&s_base, &s_dis), 0);
    }

    #[test]
    fn order_groups_similar_readers() {
        // Readers 0 and 2 share a list; they must be adjacent in the order.
        let lists = vec![
            vec![1, 2, 3],
            vec![100, 200, 300],
            vec![1, 2, 3],
            vec![7, 8, 9],
        ];
        let order = shingle_order(&lists, 4, 99);
        let pos0 = order.iter().position(|&i| i == 0).unwrap();
        let pos2 = order.iter().position(|&i| i == 2).unwrap();
        assert_eq!(pos0.abs_diff(pos2), 1);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn empty_list_handled() {
        let s = shingles(&[], 2, 1);
        assert_eq!(s, vec![u64::MAX, u64::MAX]);
    }

    #[test]
    fn order_is_permutation() {
        let lists: Vec<Vec<u32>> = (0..20).map(|i| vec![i, i + 1]).collect();
        let mut order = shingle_order(&lists, 2, 5);
        order.sort_unstable();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }
}
