//! The VNM family of overlay construction algorithms (paper §3.2.1–§3.2.4).
//!
//! All four variants share one skeleton per iteration:
//!
//! 1. order readers by min-hash [shingles](crate::shingle) of their *current*
//!    input lists,
//! 2. chunk the order into groups (equal-sized; VNM_D lets consecutive
//!    groups overlap by `p`%),
//! 3. per group, repeatedly build an [FP-tree](crate::fptree) over the
//!    group's current lists, mine the best-benefit biclique, and replace it
//!    with a partial aggregation node — rebuilding the tree after each
//!    extraction ("ideally we should remove the corresponding edges and
//!    reconstruct the FP-Tree", §3.2.1).
//!
//! Variants differ in the tree insertion (plain prefix / negative-edge BFS /
//! mined-edge penalties) and in how a mined candidate may be applied. Every
//! candidate is **validated against the live overlay** before rewiring
//! (`apply_candidate`), so the trees are purely advisory: a stale or
//! over-optimistic candidate costs compression, never correctness.
//!
//! VNM_A (§3.2.2) additionally adapts the chunk size between iterations: it
//! keeps the smallest chunk size that retains ≥ `keep_fraction` of the
//! benefit observed in the current iteration.

use crate::fptree::FpTree;
use crate::metrics::IterationStats;
use crate::overlay::{Overlay, OverlayId};
use crate::shingle::shingle_order;
use eagr_agg::{AggProps, Sign};
use eagr_graph::BipartiteGraph;
use eagr_util::{FastMap, FastSet};
use std::time::Instant;

/// Which VNM variant to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VnmVariant {
    /// Plain VNM (Buehrer-style): exact bicliques only.
    Plain,
    /// VNM_N (§3.2.3): quasi-bicliques completed by negative edges.
    Negative {
        /// `k1`: maximum FP-tree paths a reader may join on insertion.
        max_paths: usize,
        /// `k2`: maximum negative edges per path.
        max_neg_per_path: usize,
    },
    /// VNM_D (§3.2.4): duplicate-insensitive reuse of mined edges, with
    /// overlapping reader groups.
    Duplicate {
        /// Percentage (0–100) of readers shared by consecutive groups.
        overlap_pct: u32,
    },
}

/// Configuration of a VNM run.
#[derive(Clone, Debug)]
pub struct VnmConfig {
    /// Variant to execute.
    pub variant: VnmVariant,
    /// Initial reader-group size (the paper uses 100 for VNM_A's first
    /// iteration).
    pub chunk_size: usize,
    /// Adapt the chunk size between iterations (VNM_A). When `false` the
    /// chunk size stays fixed (plain VNM behaviour).
    pub adaptive: bool,
    /// VNM_A keep fraction (paper: 0.9; insensitive in 0.8–1.0).
    pub keep_fraction: f64,
    /// Number of outer iterations.
    pub iterations: usize,
    /// Min-hash shingles per reader.
    pub num_shingles: usize,
    /// RNG seed for the shingle hash functions.
    pub seed: u64,
    /// Properties of the aggregate the overlay will execute; gates negative
    /// edges (subtractable) and duplicate paths (duplicate-insensitive).
    pub props: AggProps,
}

impl VnmConfig {
    /// Plain VNM with a fixed chunk size.
    pub fn vnm(chunk_size: usize, props: AggProps) -> Self {
        Self {
            variant: VnmVariant::Plain,
            chunk_size,
            adaptive: false,
            keep_fraction: 0.9,
            iterations: 10,
            num_shingles: 2,
            seed: 0xEA67,
            props,
        }
    }

    /// VNM_A: adaptive chunk size starting at 100 (§3.2.2).
    pub fn vnma(props: AggProps) -> Self {
        Self {
            adaptive: true,
            ..Self::vnm(100, props)
        }
    }

    /// VNM_N with the paper's defaults (`k2 = 5`; `k1 = 2` paths).
    ///
    /// # Panics
    /// Panics if the aggregate is not subtractable — negative edges "should
    /// only be used when the subtraction operation is efficiently
    /// computable" (§2.2.1).
    pub fn vnmn(props: AggProps) -> Self {
        assert!(
            props.subtractable,
            "VNM_N requires a subtractable aggregate"
        );
        Self {
            variant: VnmVariant::Negative {
                max_paths: 2,
                max_neg_per_path: 5,
            },
            adaptive: true,
            ..Self::vnm(100, props)
        }
    }

    /// VNM_D with 20% group overlap (the paper's Fig 10 setting).
    ///
    /// # Panics
    /// Panics if the aggregate is duplicate-sensitive.
    pub fn vnmd(props: AggProps) -> Self {
        assert!(
            props.duplicate_insensitive,
            "VNM_D requires a duplicate-insensitive aggregate"
        );
        Self {
            variant: VnmVariant::Duplicate { overlap_pct: 20 },
            adaptive: true,
            ..Self::vnm(100, props)
        }
    }
}

/// How a mined candidate may be applied to the overlay.
#[derive(Clone, Copy, Debug)]
enum RewireMode {
    /// Reader must contain every item (plain VNM / VNM_A).
    Exact,
    /// Missing items (≤ `max_neg`) are compensated by negative edges.
    Negative { max_neg: usize },
    /// Missing items are tolerated outright (duplicate-insensitive).
    Duplicate,
}

/// Per-reader context the validator needs beyond the live overlay.
struct ReaderCtx {
    /// Original writer coverage (data-graph ids) of the reader.
    orig_cov: FastSet<u32>,
    /// Original input list as *overlay writer ids*, sorted.
    orig_items: Vec<u32>,
}

/// Outcome of applying one candidate.
#[derive(Debug, Default)]
struct ApplyOutcome {
    applied: bool,
    support: usize,
    edges_saved: i64,
}

/// Validate a mined candidate against the live overlay and rewire the
/// eligible readers through a fresh partial node. Returns what happened.
fn apply_candidate(
    ov: &mut Overlay,
    items: &[u32],
    readers: &[OverlayId],
    mode: RewireMode,
    ctx: &FastMap<OverlayId, ReaderCtx>,
) -> ApplyOutcome {
    let item_ids: Vec<OverlayId> = items.iter().map(|&i| OverlayId(i)).collect();

    // Candidate items must have pairwise-disjoint coverage for
    // duplicate-sensitive aggregates (the partial node would otherwise
    // double-count internally).
    if !matches!(mode, RewireMode::Duplicate) {
        let total: usize = item_ids.iter().map(|&i| ov.coverage(i).len()).sum();
        let mut union: Vec<u32> = item_ids
            .iter()
            .flat_map(|&i| ov.coverage(i).iter().copied())
            .collect();
        union.sort_unstable();
        union.dedup();
        if union.len() != total {
            return ApplyOutcome::default();
        }
    }

    // Per-reader eligibility and gain. Readers may appear multiple times in
    // the support of a VNM_N tree (a reader joins up to k1 paths); rewire
    // each at most once.
    let mut seen: FastSet<u32> = FastSet::default();
    let mut eligible: Vec<(OverlayId, Vec<OverlayId>, Vec<OverlayId>, i64)> = Vec::new();
    for &r in readers {
        if !seen.insert(r.0) {
            continue;
        }
        let pos: FastSet<u32> = ov
            .inputs(r)
            .iter()
            .filter(|&&(_, s)| s == Sign::Pos)
            .map(|&(f, _)| f.0)
            .collect();
        let matched: Vec<OverlayId> = item_ids
            .iter()
            .copied()
            .filter(|i| pos.contains(&i.0))
            .collect();
        let missing: Vec<OverlayId> = item_ids
            .iter()
            .copied()
            .filter(|i| !pos.contains(&i.0))
            .collect();
        let gain = match mode {
            RewireMode::Exact => {
                if !missing.is_empty() {
                    continue;
                }
                matched.len() as i64 - 1
            }
            RewireMode::Negative { max_neg } => {
                if missing.len() > max_neg {
                    continue;
                }
                matched.len() as i64 - 1 - missing.len() as i64
            }
            RewireMode::Duplicate => {
                // Every item's coverage must lie inside the reader's
                // original neighborhood — duplicates are fine, foreign
                // writers are not.
                let rc = &ctx[&r];
                let ok = missing
                    .iter()
                    .all(|&m| ov.coverage(m).iter().all(|w| rc.orig_cov.contains(w)));
                if !ok {
                    continue;
                }
                matched.len() as i64 - 1
            }
        };
        if gain > 0 {
            eligible.push((r, matched, missing, gain));
        }
    }

    let total_gain: i64 = eligible.iter().map(|e| e.3).sum::<i64>() - items.len() as i64;
    if eligible.len() < 2 || total_gain <= 0 {
        return ApplyOutcome::default();
    }

    let edges_before = ov.edge_count() as i64;
    let v = ov.add_partial(&item_ids);
    for (r, matched, missing, _) in &eligible {
        for &m in matched {
            let removed = ov.remove_edge(m, *r, Sign::Pos);
            debug_assert!(removed, "matched edge must exist");
        }
        ov.add_edge(v, *r, Sign::Pos);
        if matches!(mode, RewireMode::Negative { .. }) {
            for &m in missing {
                ov.add_edge(m, *r, Sign::Neg);
            }
        }
    }
    ApplyOutcome {
        applied: true,
        support: eligible.len(),
        edges_saved: edges_before - ov.edge_count() as i64,
    }
}

/// Current positive input items of a reader, as raw overlay ids.
fn pos_items(ov: &Overlay, r: OverlayId) -> Vec<u32> {
    ov.inputs(r)
        .iter()
        .filter(|&&(_, s)| s == Sign::Pos)
        .map(|&(f, _)| f.0)
        .collect()
}

/// Sort `list` in descending frequency order (standard FP-tree order so
/// common items share prefixes near the root), tie-broken by id.
///
/// The paper's §3.2.1 prose says "increasing order", but its own worked
/// example (d_w first, the highest-frequency writer) follows the standard
/// descending convention, which we adopt.
fn sort_by_frequency(list: &mut [u32], freq: &FastMap<u32, u32>) {
    list.sort_unstable_by(|a, b| {
        let fa = freq.get(a).copied().unwrap_or(0);
        let fb = freq.get(b).copied().unwrap_or(0);
        fb.cmp(&fa).then(a.cmp(b))
    });
}

/// Run a VNM-family construction and return the overlay plus per-iteration
/// statistics (the series plotted in Figs 8–10).
pub fn build_vnm(ag: &BipartiteGraph, cfg: &VnmConfig) -> (Overlay, Vec<IterationStats>) {
    let mut ov = Overlay::direct_from_bipartite(ag);
    // Reader contexts: original coverage, original writer items.
    let mut ctx: FastMap<OverlayId, ReaderCtx> = FastMap::default();
    for (i, _r, inputs) in ag.iter() {
        let rid = ov
            .reader(ag.reader_node(i))
            .expect("reader exists in direct overlay");
        let orig_cov: FastSet<u32> = inputs.iter().map(|w| w.0).collect();
        let mut orig_items: Vec<u32> = inputs
            .iter()
            .map(|&w| ov.writer(w).expect("writer exists").0)
            .collect();
        orig_items.sort_unstable();
        ctx.insert(
            rid,
            ReaderCtx {
                orig_cov,
                orig_items,
            },
        );
    }

    let mode = match cfg.variant {
        VnmVariant::Plain => RewireMode::Exact,
        VnmVariant::Negative {
            max_neg_per_path, ..
        } => RewireMode::Negative {
            max_neg: max_neg_per_path,
        },
        VnmVariant::Duplicate { .. } => RewireMode::Duplicate,
    };

    let mut stats = Vec::with_capacity(cfg.iterations);
    let mut chunk = cfg.chunk_size.max(2);
    let started = Instant::now();

    for iter in 0..cfg.iterations {
        let t0 = Instant::now();
        let readers: Vec<OverlayId> = ov
            .readers()
            .map(|(id, _)| id)
            .filter(|&id| pos_items(&ov, id).len() >= 2)
            .collect();
        if readers.is_empty() {
            break;
        }
        let lists: Vec<Vec<u32>> = readers.iter().map(|&r| pos_items(&ov, r)).collect();
        let order = shingle_order(&lists, cfg.num_shingles, cfg.seed ^ (iter as u64) << 32);

        // Chunk boundaries, with optional overlap for VNM_D.
        let step = match cfg.variant {
            VnmVariant::Duplicate { overlap_pct } => {
                let ov_count = chunk * overlap_pct as usize / 100;
                (chunk - ov_count).max(1)
            }
            _ => chunk,
        };

        let mut bicliques = 0usize;
        let mut iter_benefit: i64 = 0;
        // Benefit histogram by support size for VNM_A's adaptation rule.
        let mut benefit_by_support: FastMap<usize, i64> = FastMap::default();

        let mut start = 0;
        while start < order.len() {
            let group: Vec<OverlayId> = order[start..(start + chunk).min(order.len())]
                .iter()
                .map(|&i| readers[i])
                .collect();
            start += step;

            // Mine the group to exhaustion (bounded for safety).
            for _round in 0..64 {
                let applied = mine_group_once(&mut ov, &group, cfg, mode, &ctx);
                match applied {
                    Some(outcome) if outcome.applied => {
                        bicliques += 1;
                        iter_benefit += outcome.edges_saved;
                        *benefit_by_support.entry(outcome.support).or_insert(0) +=
                            outcome.edges_saved;
                    }
                    _ => break,
                }
            }
            if start >= order.len() {
                break;
            }
        }

        stats.push(IterationStats {
            iteration: iter,
            edges: ov.edge_count(),
            sharing_index: ov.sharing_index(),
            bicliques,
            benefit: iter_benefit,
            chunk_size: chunk,
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
            cumulative_ms: started.elapsed().as_secs_f64() * 1e3,
            memory_bytes: ov.memory_bytes(),
        });

        if iter_benefit == 0 {
            break; // converged
        }

        // VNM_A chunk adaptation (§3.2.2): smallest c ≤ chunk keeping
        // ≥ keep_fraction of this iteration's benefit.
        if cfg.adaptive && !benefit_by_support.is_empty() {
            let total: i64 = benefit_by_support.values().sum();
            let mut sizes: Vec<usize> = benefit_by_support.keys().copied().collect();
            sizes.sort_unstable();
            let mut acc = 0i64;
            for s in sizes {
                acc += benefit_by_support[&s];
                if acc as f64 > cfg.keep_fraction * total as f64 {
                    chunk = s.max(2).min(chunk);
                    break;
                }
            }
        }
    }

    (ov, stats)
}

/// Build the variant tree over the group's current lists, mine the single
/// best candidate, and apply it. `None` when the group has nothing to mine.
fn mine_group_once(
    ov: &mut Overlay,
    group: &[OverlayId],
    cfg: &VnmConfig,
    mode: RewireMode,
    ctx: &FastMap<OverlayId, ReaderCtx>,
) -> Option<ApplyOutcome> {
    // Current lists and item frequencies within the group.
    let lists: Vec<Vec<u32>> = group.iter().map(|&r| pos_items(ov, r)).collect();
    let mut freq: FastMap<u32, u32> = FastMap::default();
    for l in &lists {
        for &it in l {
            *freq.entry(it).or_insert(0) += 1;
        }
    }

    let mut tree = FpTree::new();
    for (local, (&r, list)) in group.iter().zip(&lists).enumerate() {
        if list.len() < 2 && !matches!(cfg.variant, VnmVariant::Duplicate { .. }) {
            continue;
        }
        match cfg.variant {
            VnmVariant::Plain => {
                let mut sorted = list.clone();
                sort_by_frequency(&mut sorted, &freq);
                tree.insert_path(local as u32, &sorted, |_| false);
            }
            VnmVariant::Negative {
                max_paths,
                max_neg_per_path,
            } => {
                let mut sorted = list.clone();
                sort_by_frequency(&mut sorted, &freq);
                let set: FastSet<u32> = list.iter().copied().collect();
                tree.insert_with_negatives(
                    local as u32,
                    &set,
                    &sorted,
                    max_paths,
                    max_neg_per_path,
                );
            }
            VnmVariant::Duplicate { .. } => {
                // Insertion list = current items ∪ original writer items not
                // currently direct inputs; the latter carry the S_mined
                // penalty.
                let cur: FastSet<u32> = list.iter().copied().collect();
                let rc = &ctx[&r];
                let mut sorted: Vec<u32> = list.clone();
                for &wi in &rc.orig_items {
                    if !cur.contains(&wi) {
                        sorted.push(wi);
                    }
                }
                if sorted.len() < 2 {
                    continue;
                }
                sort_by_frequency(&mut sorted, &freq);
                tree.insert_path(local as u32, &sorted, |it| !cur.contains(&it));
            }
        }
    }

    let cand = tree.best_biclique(2)?;
    let cand_readers: Vec<OverlayId> = cand.readers.iter().map(|&l| group[l as usize]).collect();
    Some(apply_candidate(ov, &cand.items, &cand_readers, mode, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_graph::{paper_example_graph, Neighborhood};

    fn paper_ag() -> BipartiteGraph {
        BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true)
    }

    fn sum_props() -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }

    fn max_props() -> AggProps {
        AggProps {
            duplicate_insensitive: true,
            subtractable: false,
        }
    }

    #[test]
    fn vnm_compresses_paper_example() {
        let ag = paper_ag();
        let (ov, stats) = build_vnm(&ag, &VnmConfig::vnm(10, sum_props()));
        assert!(ov.sharing_index() > 0.0, "SI = {}", ov.sharing_index());
        assert!(ov.partial_count() >= 1);
        assert!(!stats.is_empty());
        // Edge count must strictly beat the bipartite graph.
        assert!(ov.edge_count() < ag.edge_count());
    }

    #[test]
    fn vnma_adapts_chunk_size() {
        let ag = paper_ag();
        let cfg = VnmConfig::vnma(sum_props());
        let (_ov, stats) = build_vnm(&ag, &cfg);
        assert!(stats[0].chunk_size == 100);
    }

    #[test]
    fn vnmn_uses_negative_edges_when_profitable() {
        let ag = paper_ag();
        let (ov, _) = build_vnm(&ag, &VnmConfig::vnmn(sum_props()));
        assert!(ov.sharing_index() > 0.0);
        // The paper's example (Fig 2b) finds negative-edge overlays for this
        // graph; at minimum the overlay must remain consistent.
        let neg_edges = ov
            .ids()
            .flat_map(|n| ov.inputs(n).to_vec())
            .filter(|&(_, s)| s == Sign::Neg)
            .count();
        let _ = neg_edges; // may be 0 on tiny graphs; correctness checked below
        crate::validate::validate_vs_bipartite(&ov, sum_props(), &ag).unwrap();
    }

    #[test]
    fn vnmd_allows_duplicate_paths() {
        let ag = paper_ag();
        let (ov, _) = build_vnm(&ag, &VnmConfig::vnmd(max_props()));
        assert!(ov.sharing_index() > 0.0);
        crate::validate::validate_vs_bipartite(&ov, max_props(), &ag).unwrap();
    }

    #[test]
    fn sharing_index_non_decreasing_over_iterations() {
        let ag = paper_ag();
        let (_, stats) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
        for w in stats.windows(2) {
            assert!(w[1].sharing_index >= w[0].sharing_index - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "subtractable")]
    fn vnmn_rejects_non_subtractable() {
        VnmConfig::vnmn(max_props());
    }

    #[test]
    #[should_panic(expected = "duplicate-insensitive")]
    fn vnmd_rejects_duplicate_sensitive() {
        VnmConfig::vnmd(sum_props());
    }

    #[test]
    fn vnm_overlay_validates_for_sum() {
        let ag = paper_ag();
        let (ov, _) = build_vnm(&ag, &VnmConfig::vnm(10, sum_props()));
        crate::validate::validate_vs_bipartite(&ov, sum_props(), &ag).unwrap();
    }

    #[test]
    fn exact_rewire_preserves_contribution() {
        // Hand-run apply_candidate on the Fig 1(d) PA1 biclique.
        let ag = paper_ag();
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let mut ctx: FastMap<OverlayId, ReaderCtx> = FastMap::default();
        for (i, _r, inputs) in ag.iter() {
            let rid = ov.reader(ag.reader_node(i)).unwrap();
            ctx.insert(
                rid,
                ReaderCtx {
                    orig_cov: inputs.iter().map(|w| w.0).collect(),
                    orig_items: inputs.iter().map(|&w| ov.writer(w).unwrap().0).collect(),
                },
            );
        }
        let items: Vec<u32> = [0u32, 1, 2]
            .iter()
            .map(|&w| ov.writer(eagr_graph::NodeId(w)).unwrap().0)
            .collect();
        let readers: Vec<OverlayId> = [2u32, 3, 4, 5, 6]
            .iter()
            .map(|&r| ov.reader(eagr_graph::NodeId(r)).unwrap())
            .collect();
        let out = apply_candidate(&mut ov, &items, &readers, RewireMode::Exact, &ctx);
        assert!(out.applied);
        // All five readers c,d,e,f,g contain {a,b,c}: Fig 1(d)'s PA1.
        assert_eq!(out.support, 5);
        // 15 removed, 3 + 5 added ⇒ 7 saved.
        assert_eq!(out.edges_saved, 7);
        crate::validate::validate_vs_bipartite(&ov, sum_props(), &ag).unwrap();
    }
}
