//! Incremental overlay maintenance under data-graph changes (paper §3.3).
//!
//! [`DynamicOverlay`] pairs an [`IobState`] (overlay + reverse index) with
//! the query's neighborhood function and applies the paper's repair rules:
//!
//! * **edge addition** — for each reader whose input list grew by Δ: if
//!   `|Δ|` exceeds a threshold, cover Δ with a (possibly existing) partial
//!   aggregate via the IOB machinery; otherwise add direct writer edges. A
//!   per-reader count of accumulated direct edges triggers a full IOB
//!   restructuring of that reader when it crosses its own threshold.
//! * **edge deletion** — for each reader whose input list shrank: if few
//!   upstream nodes are affected, repair locally (drop direct edges; for
//!   writers that reach the reader through shared partials, either cancel
//!   with a negative edge — subtraction permitting — or re-cover the
//!   partial minus Δ); otherwise tear the reader's inputs down and re-add
//!   them with IOB.
//! * **node addition/deletion** — writers/readers enter lazily on first
//!   edge and are retired with coverage purging on deletion.
//!
//! The data graph is mutated *through* these methods so the before/after
//! neighborhood diff is computed consistently.

use crate::iob::IobState;
use crate::overlay::{Overlay, OverlayId, OverlayKind};
use eagr_agg::{AggProps, Sign};
use eagr_graph::{DataGraph, Neighborhood, NodeId};
use eagr_util::{FastMap, FastSet};

/// Tuning knobs for the §3.3 repair rules.
#[derive(Clone, Copy, Debug)]
pub struct DynamicConfig {
    /// `|Δ|` above which an edge-addition repair builds/reuses a partial
    /// aggregate instead of adding direct edges.
    pub delta_threshold: usize,
    /// Accumulated direct edges per reader before it is rebuilt with IOB.
    pub direct_edge_threshold: usize,
    /// Affected-upstream-node count above which an edge-deletion repair
    /// rebuilds the reader instead of patching locally (paper: 5).
    pub split_limit: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            delta_threshold: 4,
            direct_edge_threshold: 16,
            split_limit: 5,
        }
    }
}

/// An overlay that tracks a changing data graph.
pub struct DynamicOverlay {
    state: IobState,
    neighborhood: Neighborhood,
    props: AggProps,
    cfg: DynamicConfig,
    /// Direct writer→reader edges accumulated by repairs, per reader.
    direct_edges: FastMap<OverlayId, usize>,
    /// Pre-existing overlay nodes whose *input list* a repair rewired —
    /// their materialized PAOs are stale and the engine must rebuild them
    /// (and everything downstream) before serving reads. Fresh nodes are
    /// not tracked here: the caller already knows them from the arena
    /// growing (ids are append-only). Restructuring carves
    /// ([`IobState::cover`]) are *not* dirty: a carve replaces a subset of
    /// a node's inputs with one fresh partial aggregating exactly that
    /// subset, so the node's net value is unchanged.
    dirty: FastSet<OverlayId>,
}

impl DynamicOverlay {
    /// Wrap an overlay (any construction algorithm) for dynamic
    /// maintenance.
    pub fn new(
        overlay: Overlay,
        neighborhood: Neighborhood,
        props: AggProps,
        cfg: DynamicConfig,
    ) -> Self {
        Self {
            state: IobState::from_overlay(overlay),
            neighborhood,
            props,
            cfg,
            direct_edges: FastMap::default(),
            dirty: FastSet::default(),
        }
    }

    /// The maintained overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.state.overlay
    }

    /// Consume self, returning the overlay.
    pub fn into_overlay(self) -> Overlay {
        self.state.overlay
    }

    /// Pre-existing nodes whose inputs were rewired since the last
    /// [`take_dirty`](Self::take_dirty) (may include since-retired ids —
    /// filter with [`Overlay::is_retired`]). These are *seeds*: a stale
    /// partial makes everything downstream stale too, so the engine-side
    /// repair expands the set along output edges before rematerializing.
    pub fn dirty(&self) -> &FastSet<OverlayId> {
        &self.dirty
    }

    /// Drain the dirty-node set accumulated by repairs.
    pub fn take_dirty(&mut self) -> FastSet<OverlayId> {
        std::mem::take(&mut self.dirty)
    }

    /// Readers whose neighborhood may involve the edge `(u, v)` — a safe
    /// superset probed before and after the mutation.
    fn candidates(&self, g: &DataGraph, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let r = self.neighborhood.radius();
        let mut set: FastSet<NodeId> = FastSet::default();
        set.insert(u);
        set.insert(v);
        if r > 1 {
            for x in [u, v] {
                for n in g.out_neighbors_k_hop(x, r - 1) {
                    set.insert(n);
                }
                for n in g.in_neighbors_k_hop(x, r - 1) {
                    set.insert(n);
                }
            }
        } else {
            // 1-hop: the endpoints themselves suffice for In/Out/Undirected.
        }
        set.into_iter().collect()
    }

    fn snapshot(&self, g: &DataGraph, candidates: &[NodeId]) -> FastMap<NodeId, Vec<NodeId>> {
        candidates
            .iter()
            .filter(|&&c| g.contains(c))
            .map(|&c| {
                let mut n = self.neighborhood.select(g, c);
                n.sort_unstable();
                (c, n)
            })
            .collect()
    }

    /// Add a data-graph edge and repair the overlay. Returns `false` if the
    /// edge already existed.
    pub fn add_edge(&mut self, g: &mut DataGraph, u: NodeId, v: NodeId) -> bool {
        if g.has_edge(u, v) {
            return false;
        }
        let cands = self.candidates(g, u, v);
        let before = self.snapshot(g, &cands);
        g.add_edge(u, v);
        let after = self.snapshot(g, &cands);
        self.apply_diffs(g, &cands, &before, &after);
        true
    }

    /// Remove a data-graph edge and repair the overlay. Returns `false` if
    /// the edge did not exist.
    pub fn remove_edge(&mut self, g: &mut DataGraph, u: NodeId, v: NodeId) -> bool {
        if !g.has_edge(u, v) {
            return false;
        }
        let cands = self.candidates(g, u, v);
        let before = self.snapshot(g, &cands);
        g.remove_edge(u, v);
        let after = self.snapshot(g, &cands);
        self.apply_diffs(g, &cands, &before, &after);
        true
    }

    /// Add a fresh node to the data graph. The overlay picks it up lazily
    /// when its first edges arrive (§3.3: "in most cases, a new node is
    /// added with one edge to an existing node").
    pub fn add_node(&mut self, g: &mut DataGraph) -> NodeId {
        g.add_node()
    }

    /// Remove a node from the data graph and the overlay: both its reader
    /// and writer roles disappear; partial aggregates stop receiving it
    /// (their coverage is purged via the reverse index).
    pub fn remove_node(&mut self, g: &mut DataGraph, u: NodeId) {
        if let Some(rid) = self.state.overlay.reader(u) {
            self.state.drop_reader_cov(rid);
            self.state.overlay.retire_node(rid);
            self.direct_edges.remove(&rid);
        }
        if let Some(wid) = self.state.overlay.writer(u) {
            // Everything the writer fed loses an input: those partials (and
            // readers) hold PAOs that still include the retired writer's
            // contribution, so mark them stale before the edges vanish.
            let fed: Vec<OverlayId> = self
                .state
                .overlay
                .outputs(wid)
                .iter()
                .map(|&(t, _)| t)
                .collect();
            self.dirty.extend(fed);
            self.state.purge_writer_coverage(u.0);
            self.state.overlay.retire_node(wid);
        }
        self.state.gc_orphans();
        g.remove_node(u);
    }

    fn apply_diffs(
        &mut self,
        g: &DataGraph,
        cands: &[NodeId],
        before: &FastMap<NodeId, Vec<NodeId>>,
        after: &FastMap<NodeId, Vec<NodeId>>,
    ) {
        for &c in cands {
            let empty: Vec<NodeId> = Vec::new();
            let b = before.get(&c).unwrap_or(&empty);
            let a = after.get(&c).unwrap_or(&empty);
            if b == a {
                continue;
            }
            let bset: FastSet<NodeId> = b.iter().copied().collect();
            let aset: FastSet<NodeId> = a.iter().copied().collect();
            let added: Vec<NodeId> = a.iter().copied().filter(|x| !bset.contains(x)).collect();
            let removed: Vec<NodeId> = b.iter().copied().filter(|x| !aset.contains(x)).collect();

            let rid = match self.state.overlay.reader(c) {
                Some(rid) => rid,
                None => {
                    if !a.is_empty() {
                        self.state.add_reader(c, a);
                    }
                    continue;
                }
            };
            if a.is_empty() {
                // Reader lost its entire neighborhood.
                self.state.drop_reader_cov(rid);
                self.state.overlay.retire_node(rid);
                self.direct_edges.remove(&rid);
                self.state.gc_orphans();
                continue;
            }
            // The repair below rewires this pre-existing reader's inputs.
            self.dirty.insert(rid);
            if !added.is_empty() {
                self.handle_added(rid, &added);
                let ws: Vec<u32> = added.iter().map(|w| w.0).collect();
                self.state.extend_reader_cov(rid, &ws);
            }
            if !removed.is_empty() {
                self.handle_removed(g, c, rid, &removed, &aset);
                let ws: Vec<u32> = removed.iter().map(|w| w.0).collect();
                self.state.shrink_reader_cov(rid, &ws);
            }
        }
    }

    /// §3.3 "Addition of Edges".
    fn handle_added(&mut self, rid: OverlayId, added: &[NodeId]) {
        if added.len() > self.cfg.delta_threshold {
            let targets: FastSet<u32> = added.iter().map(|w| w.0).collect();
            let cover = self.state.cover(&targets);
            if cover.len() == 1 {
                self.state.overlay.add_edge(cover[0], rid, Sign::Pos);
            } else {
                let v = self.state.overlay.add_partial(&cover);
                // Index the new aggregate for future reuse.
                for &w in &targets {
                    let _ = w;
                }
                self.index_partial(v);
                self.state.overlay.add_edge(v, rid, Sign::Pos);
            }
        } else {
            for &w in added {
                let wid = self.state.ensure_writer(w);
                self.state.overlay.add_edge(wid, rid, Sign::Pos);
            }
            let count = self.direct_edges.entry(rid).or_insert(0);
            *count += added.len();
            if *count > self.cfg.direct_edge_threshold {
                self.rebuild_reader(rid);
            }
        }
    }

    fn index_partial(&mut self, v: OverlayId) {
        // IobState::cover indexes nodes it creates; nodes created here (the
        // Δ aggregate) must be indexed too. Delegate through a fresh cover
        // of the node's own coverage — cheaper to expose a helper:
        let cov: Vec<u32> = self.state.overlay.coverage(v).to_vec();
        for w in cov {
            self.state.index_writer(w, v);
        }
    }

    /// §3.3 "Deletion of Edges".
    fn handle_removed(
        &mut self,
        _g: &DataGraph,
        _c: NodeId,
        rid: OverlayId,
        removed: &[NodeId],
        new_n: &FastSet<NodeId>,
    ) {
        let delta: FastSet<u32> = removed.iter().map(|w| w.0).collect();
        // Count upstream overlay nodes whose coverage intersects Δ.
        let mut affected = 0usize;
        let mut stack: Vec<OverlayId> = self
            .state
            .overlay
            .inputs(rid)
            .iter()
            .map(|&(f, _)| f)
            .collect();
        let mut seen: FastSet<u32> = FastSet::default();
        while let Some(n) = stack.pop() {
            if !seen.insert(n.0) {
                continue;
            }
            if self
                .state
                .overlay
                .coverage(n)
                .iter()
                .any(|w| delta.contains(w))
            {
                affected += 1;
                for &(f, _) in self.state.overlay.inputs(n) {
                    stack.push(f);
                }
            }
        }

        if affected > self.cfg.split_limit {
            self.rebuild_reader_with(rid, new_n);
            return;
        }

        // Local patch. Work over the reader's direct inputs.
        let inputs: Vec<(OverlayId, Sign)> = self.state.overlay.inputs(rid).to_vec();
        let mut still_needed: FastSet<u32> = delta.clone();
        for (n, sign) in inputs {
            let hits: Vec<u32> = self
                .state
                .overlay
                .coverage(n)
                .iter()
                .copied()
                .filter(|w| delta.contains(w))
                .collect();
            if hits.is_empty() {
                continue;
            }
            match self.state.overlay.kind(n) {
                OverlayKind::Writer(_) => {
                    // A direct edge from a deleted-neighborhood writer: a
                    // positive edge is dropped; a negative edge (a previous
                    // cancellation) must also be dropped only if the writer
                    // no longer flows through any positive path — handled by
                    // the generic re-cover below, so drop positives only.
                    if sign == Sign::Pos {
                        self.state.overlay.remove_edge(n, rid, Sign::Pos);
                        for h in hits {
                            still_needed.remove(&h);
                        }
                    }
                }
                OverlayKind::Partial => {
                    if sign == Sign::Neg {
                        continue;
                    }
                    if self.props.subtractable && hits.len() <= self.cfg.delta_threshold {
                        // Cancel each stray writer with a negative edge.
                        for h in hits {
                            let wid = self.state.ensure_writer(NodeId(h));
                            self.state.overlay.add_edge(wid, rid, Sign::Neg);
                            still_needed.remove(&h);
                        }
                    } else {
                        // Re-cover I(n) ∖ Δ and splice it in place of n.
                        let keep: FastSet<u32> = self
                            .state
                            .overlay
                            .coverage(n)
                            .iter()
                            .copied()
                            .filter(|w| !delta.contains(w))
                            .collect();
                        self.state.overlay.remove_edge(n, rid, Sign::Pos);
                        if !keep.is_empty() {
                            let cover = self.state.cover(&keep);
                            for piece in cover {
                                self.state.overlay.add_edge(piece, rid, Sign::Pos);
                            }
                        }
                        for h in hits {
                            still_needed.remove(&h);
                        }
                    }
                }
                OverlayKind::Reader(_) => unreachable!("readers never feed nodes"),
            }
        }
        self.state.gc_orphans();
    }

    /// Tear down and re-add a reader's inputs from its current neighborhood.
    fn rebuild_reader(&mut self, rid: OverlayId) {
        // Reconstruct the target set from the overlay's own signed coverage
        // (net positive writers).
        let mut net: FastMap<u32, i64> = FastMap::default();
        for &(f, s) in self.state.overlay.inputs(rid) {
            let d = if s.is_negative() { -1 } else { 1 };
            for &w in self.state.overlay.coverage(f) {
                *net.entry(w).or_insert(0) += d;
            }
        }
        let targets: FastSet<NodeId> = net
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(w, _)| NodeId(w))
            .collect();
        self.rebuild_reader_with(rid, &targets);
    }

    fn rebuild_reader_with(&mut self, rid: OverlayId, targets: &FastSet<NodeId>) {
        self.dirty.insert(rid);
        let old: Vec<(OverlayId, Sign)> = self.state.overlay.inputs(rid).to_vec();
        for (f, s) in old {
            self.state.overlay.remove_edge(f, rid, s);
        }
        let t32: FastSet<u32> = targets.iter().map(|w| w.0).collect();
        if !t32.is_empty() {
            let cover = self.state.cover(&t32);
            let directs = cover
                .iter()
                .filter(|&&n| matches!(self.state.overlay.kind(n), OverlayKind::Writer(_)))
                .count();
            for n in cover {
                self.state.overlay.add_edge(n, rid, Sign::Pos);
            }
            self.direct_edges.insert(rid, directs);
        } else {
            self.direct_edges.remove(&rid);
        }
        self.state.gc_orphans();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iob::{build_iob, IobConfig};
    use crate::validate::validate_against;
    use eagr_graph::{paper_example_graph, BipartiteGraph};

    fn sum_props() -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }

    /// Validate the overlay against the *current* graph neighborhoods.
    fn check(dynov: &DynamicOverlay, g: &DataGraph, nbh: &Neighborhood) {
        let ov = dynov.overlay();
        validate_against(ov, sum_props(), |rid| {
            let (_, r) = ov.readers().find(|&(id, _)| id == rid).unwrap();
            nbh.select(g, r).into_iter().map(|w| (w.0, 1)).collect()
        })
        .unwrap();
    }

    fn setup() -> (DataGraph, DynamicOverlay, Neighborhood) {
        let g = paper_example_graph();
        let nbh = Neighborhood::In;
        let ag = BipartiteGraph::build(&g, &nbh, |_| true);
        let (ov, _) = build_iob(&ag, &IobConfig::default());
        let dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());
        (g, dynov, nbh)
    }

    #[test]
    fn edge_addition_repairs_reader() {
        let (mut g, mut dynov, nbh) = setup();
        // New edge g → a: N(a) gains g.
        assert!(dynov.add_edge(&mut g, NodeId(6), NodeId(0)));
        check(&dynov, &g, &nbh);
        // Duplicate addition is a no-op.
        assert!(!dynov.add_edge(&mut g, NodeId(6), NodeId(0)));
    }

    #[test]
    fn edge_deletion_repairs_reader() {
        let (mut g, mut dynov, nbh) = setup();
        // Remove c → a: N(a) loses c.
        assert!(dynov.remove_edge(&mut g, NodeId(2), NodeId(0)));
        check(&dynov, &g, &nbh);
        assert!(!dynov.remove_edge(&mut g, NodeId(2), NodeId(0)));
    }

    #[test]
    fn many_edge_changes_stay_consistent() {
        let (mut g, mut dynov, nbh) = setup();
        let ops: [(u32, u32, bool); 8] = [
            (6, 0, true),
            (6, 1, true),
            (0, 1, true),
            (3, 0, false),
            (4, 0, false),
            (5, 2, false),
            (6, 2, true),
            (1, 4, false),
        ];
        for (u, v, add) in ops {
            if add {
                dynov.add_edge(&mut g, NodeId(u), NodeId(v));
            } else {
                dynov.remove_edge(&mut g, NodeId(u), NodeId(v));
            }
            check(&dynov, &g, &nbh);
        }
    }

    #[test]
    fn node_addition_lazy() {
        let (mut g, mut dynov, nbh) = setup();
        let n = dynov.add_node(&mut g);
        assert!(dynov.overlay().reader(n).is_none(), "no edges yet");
        dynov.add_edge(&mut g, NodeId(0), n);
        assert!(dynov.overlay().reader(n).is_some());
        check(&dynov, &g, &nbh);
    }

    #[test]
    fn node_deletion_purges_everywhere() {
        let (mut g, mut dynov, nbh) = setup();
        dynov.remove_node(&mut g, NodeId(3)); // d: in every reader's list
        assert!(dynov.overlay().writer(NodeId(3)).is_none());
        assert!(dynov.overlay().reader(NodeId(3)).is_none());
        check(&dynov, &g, &nbh);
        // Coverage sets no longer mention the deleted writer.
        for n in dynov.overlay().ids() {
            assert!(!dynov.overlay().coverage(n).contains(&3));
        }
    }

    #[test]
    fn bulk_delta_uses_partial_aggregate() {
        let (mut g, mut dynov, nbh) = setup();
        // Give node a six new in-edges at once via a 2-hop-free path: add
        // one edge at a time but below threshold they are direct; force the
        // bulk path by a node deletion + re-add with large Δ.
        // Simpler: large Δ through rebuild — add many edges; the
        // direct-edge threshold eventually rebuilds the reader.
        let _ = (&mut g, &mut dynov); // base fixture unused in this test
        let cfg = DynamicConfig {
            direct_edge_threshold: 3,
            ..Default::default()
        };
        let g2 = paper_example_graph();
        let ag = BipartiteGraph::build(&g2, &nbh, |_| true);
        let (ov, _) = build_iob(&ag, &IobConfig::default());
        let mut dynov2 = DynamicOverlay::new(ov, nbh.clone(), sum_props(), cfg);
        let mut g2 = g2;
        // a currently lacks edges from b and g; add both, then remove and
        // re-add others to push the direct-edge count over threshold.
        dynov2.add_edge(&mut g2, NodeId(1), NodeId(0));
        dynov2.add_edge(&mut g2, NodeId(6), NodeId(0));
        dynov2.remove_edge(&mut g2, NodeId(1), NodeId(0));
        dynov2.add_edge(&mut g2, NodeId(1), NodeId(0));
        check(&dynov2, &g2, &nbh);
    }

    #[test]
    fn repairs_mark_rewired_nodes_dirty() {
        let (mut g, mut dynov, _nbh) = setup();
        assert!(dynov.dirty().is_empty(), "fresh wrapper starts clean");

        // Edge churn: the repaired reader's inputs were rewired.
        dynov.add_edge(&mut g, NodeId(6), NodeId(0));
        let rid = dynov.overlay().reader(NodeId(0)).unwrap();
        assert!(dynov.dirty().contains(&rid), "repaired reader is dirty");

        // take_dirty drains.
        let drained = dynov.take_dirty();
        assert!(drained.contains(&rid));
        assert!(dynov.dirty().is_empty());

        // Removing a writer node dirties everything it fed — readers and
        // shared partials whose stored PAOs still include its contribution.
        let wid = dynov.overlay().writer(NodeId(3)).unwrap();
        let fed: Vec<OverlayId> = dynov
            .overlay()
            .outputs(wid)
            .iter()
            .map(|&(t, _)| t)
            .collect();
        assert!(!fed.is_empty(), "fixture writer d feeds someone");
        dynov.remove_node(&mut g, NodeId(3));
        let dirty = dynov.take_dirty();
        for t in fed {
            assert!(dirty.contains(&t), "downstream {t:?} must be dirty");
        }
    }

    #[test]
    fn two_hop_neighborhood_maintenance() {
        let g0 = paper_example_graph();
        let nbh = Neighborhood::KHopIn(2);
        let ag = BipartiteGraph::build(&g0, &nbh, |_| true);
        let (ov, _) = build_iob(&ag, &IobConfig::default());
        let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());
        let mut g = g0;
        dynov.add_edge(&mut g, NodeId(6), NodeId(0));
        check(&dynov, &g, &nbh);
        dynov.remove_edge(&mut g, NodeId(2), NodeId(0));
        check(&dynov, &g, &nbh);
    }
}
