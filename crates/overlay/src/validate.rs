//! Overlay correctness validation (paper §2.2.1's single-path requirement).
//!
//! "For correctness, there can only be one (directed) path from a writer to
//! a reader in an overlay graph" — with two exceptions: duplicate-insensitive
//! aggregates may have multiple paths, and negative edges may cancel
//! duplicate contributions.
//!
//! [`validate`] checks the *net contribution* of every writer to every
//! reader by signed path counting over a topological order:
//!
//! * duplicate-sensitive: net contribution of each writer in `N(r)` must be
//!   exactly 1, and of every other writer exactly 0;
//! * duplicate-insensitive: ≥ 1 for neighborhood writers, 0 for others, and
//!   never negative anywhere.
//!
//! This is `O(V·W)` in the worst case and meant for tests, debugging, and
//! assertions on small-to-medium overlays — construction keeps the invariant
//! by design; validation proves it.

use crate::overlay::{Overlay, OverlayId, OverlayKind};
use eagr_agg::AggProps;
use eagr_util::FastMap;

/// Why an overlay failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// A reader has an outgoing edge.
    ReaderWithOutput(OverlayId),
    /// A writer has an incoming edge.
    WriterWithInput(OverlayId),
    /// A negative edge exists but the aggregate cannot subtract.
    NegativeEdgeNotAllowed(OverlayId),
    /// Net contribution of `writer` to `reader` was `got`, expected `want`
    /// (or at least `want` for duplicate-insensitive aggregates).
    WrongContribution {
        /// Reader overlay node.
        reader: OverlayId,
        /// Writer data id.
        writer: u32,
        /// Signed path count observed.
        got: i64,
        /// Expected count (exact or minimum).
        want: i64,
    },
    /// A non-reader node has negative net multiplicity for some writer
    /// (an aggregation node would hold a negative contribution).
    NegativeMultiplicity(OverlayId),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::ReaderWithOutput(n) => write!(f, "reader {n:?} has an output edge"),
            ValidationError::WriterWithInput(n) => write!(f, "writer {n:?} has an input edge"),
            ValidationError::NegativeEdgeNotAllowed(n) => {
                write!(
                    f,
                    "negative edge into {n:?} but aggregate is not subtractable"
                )
            }
            ValidationError::WrongContribution {
                reader,
                writer,
                got,
                want,
            } => write!(
                f,
                "reader {reader:?}: writer {writer} contributes {got}, expected {want}"
            ),
            ValidationError::NegativeMultiplicity(n) => {
                write!(f, "node {n:?} holds a negative writer multiplicity")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate the overlay against the expected per-reader writer coverage.
///
/// The expected coverage of a reader is taken from the overlay's own record
/// of reader original inputs — callers that rewired neighborhoods (dynamic
/// maintenance) pass the current expectation explicitly via
/// [`validate_against`].
pub fn validate(ov: &Overlay, props: AggProps) -> Result<(), ValidationError> {
    // Expected coverage: net writer multiset must equal what a direct
    // overlay would deliver. We reconstruct it from signed path counts of
    // the *writers present*, compared against... the readers' own inputs at
    // direct-build time are not stored, so here we check structural
    // invariants plus consistency: each reader's net coverage must be a
    // {0,1}-vector (or ≥0 for duplicate-insensitive) and must equal the
    // union implied by its positive-input coverages minus negatives.
    validate_against(ov, props, |r| expected_from_structure(ov, r))
}

/// Compute the expected coverage of a reader from the overlay structure
/// itself: sum of positive-input coverages, minus one per negative input —
/// i.e. what the construction *intended*. Combined with the net-path check
/// this catches double counting and missing contributions.
fn expected_from_structure(ov: &Overlay, r: OverlayId) -> FastMap<u32, i64> {
    let mut want: FastMap<u32, i64> = FastMap::default();
    for &(f, s) in ov.inputs(r) {
        let delta = if s.is_negative() { -1 } else { 1 };
        for &w in ov.coverage(f) {
            *want.entry(w).or_insert(0) += delta;
        }
    }
    // Clamp multiplicities: the *intended* net coverage is presence (1) per
    // writer; duplicate-insensitive overlays may intend more.
    want.retain(|_, c| *c != 0);
    want
}

/// Validate the overlay against the bipartite graph it was built from: every
/// reader must net-receive exactly its original input-list writers (the
/// strongest form of the §2.2.1 invariant).
pub fn validate_vs_bipartite(
    ov: &Overlay,
    props: AggProps,
    ag: &eagr_graph::BipartiteGraph,
) -> Result<(), ValidationError> {
    let mut want_by_reader: FastMap<OverlayId, FastMap<u32, i64>> = FastMap::default();
    for (i, r, inputs) in ag.iter() {
        let _ = i;
        if let Some(rid) = ov.reader(r) {
            let want: FastMap<u32, i64> = inputs.iter().map(|w| (w.0, 1)).collect();
            want_by_reader.insert(rid, want);
        }
    }
    validate_against(ov, props, |r| {
        want_by_reader.get(&r).cloned().unwrap_or_default()
    })
}

/// Validate with an explicit expectation: `expected(r)` returns the writer
/// multiset the reader should net-receive (data ids → multiplicity; for
/// duplicate-sensitive aggregates every multiplicity must be exactly the
/// expected one; for duplicate-insensitive, at least 1 where expected > 0).
pub fn validate_against(
    ov: &Overlay,
    props: AggProps,
    expected: impl Fn(OverlayId) -> FastMap<u32, i64>,
) -> Result<(), ValidationError> {
    // Structural checks.
    for n in ov.ids() {
        match ov.kind(n) {
            OverlayKind::Reader(_) => {
                if !ov.outputs(n).is_empty() {
                    return Err(ValidationError::ReaderWithOutput(n));
                }
            }
            OverlayKind::Writer(_) => {
                if !ov.inputs(n).is_empty() {
                    return Err(ValidationError::WriterWithInput(n));
                }
            }
            OverlayKind::Partial => {}
        }
        if !props.subtractable {
            let has_neg = ov.inputs(n).iter().any(|&(_, s)| s.is_negative());
            if has_neg {
                return Err(ValidationError::NegativeEdgeNotAllowed(n));
            }
        }
    }

    // Signed path counting in topological order: mult[n] maps writer data
    // id → net multiplicity at n.
    let order = ov.topo_order(); // also asserts acyclicity
    let mut mult: Vec<FastMap<u32, i64>> = vec![FastMap::default(); ov.node_count()];
    for &n in &order {
        if let OverlayKind::Writer(w) = ov.kind(n) {
            mult[n.idx()].insert(w.0, 1);
        }
        // Push to consumers.
        let m = std::mem::take(&mut mult[n.idx()]);
        for &(t, s) in ov.outputs(n) {
            let delta = if s.is_negative() { -1 } else { 1 };
            for (&w, &c) in &m {
                *mult[t.idx()].entry(w).or_insert(0) += c * delta;
            }
        }
        mult[n.idx()] = m;

        // Aggregation nodes must never hold net-negative contributions.
        if !matches!(ov.kind(n), OverlayKind::Reader(_)) && mult[n.idx()].values().any(|&c| c < 0) {
            return Err(ValidationError::NegativeMultiplicity(n));
        }
    }

    for (r, _) in ov.readers() {
        let want = expected(r);
        let got = &mult[r.idx()];
        // Every expected writer present with the right multiplicity.
        for (&w, &want_c) in &want {
            let got_c = got.get(&w).copied().unwrap_or(0);
            let ok = if props.duplicate_insensitive {
                got_c >= want_c.min(1) && got_c >= 1
            } else {
                got_c == want_c
            };
            if !ok {
                return Err(ValidationError::WrongContribution {
                    reader: r,
                    writer: w,
                    got: got_c,
                    want: want_c,
                });
            }
        }
        // No foreign contributions.
        for (&w, &got_c) in got {
            if got_c != 0 && !want.contains_key(&w) {
                return Err(ValidationError::WrongContribution {
                    reader: r,
                    writer: w,
                    got: got_c,
                    want: 0,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::Overlay;
    use eagr_agg::Sign;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood, NodeId};

    fn sum_props() -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }

    fn max_props() -> AggProps {
        AggProps {
            duplicate_insensitive: true,
            subtractable: false,
        }
    }

    fn direct_paper_overlay() -> Overlay {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        Overlay::direct_from_bipartite(&ag)
    }

    #[test]
    fn direct_overlay_is_valid() {
        let ov = direct_paper_overlay();
        validate(&ov, sum_props()).unwrap();
        validate(&ov, max_props()).unwrap();
    }

    #[test]
    fn duplicate_path_caught_for_sum() {
        let mut ov = direct_paper_overlay();
        // Reader a already receives c directly; add a partial over {c} too.
        let cw = ov.writer(NodeId(2)).unwrap();
        let p = ov.add_partial(&[cw]);
        let ar = ov.reader(NodeId(0)).unwrap();
        ov.add_edge(p, ar, Sign::Pos);
        // Structure-implied expectation counts c twice, so the *intended*
        // coverage is 2 — but a duplicate-sensitive overlay should never
        // intend that. Validate against the true neighborhood instead.
        let err = validate_against(&ov, sum_props(), |r| {
            let mut want = eagr_util::FastMap::default();
            if r == ar {
                for w in [2u32, 3, 4, 5] {
                    want.insert(w, 1);
                }
            } else {
                want = super::expected_from_structure(&ov, r);
            }
            want
        })
        .unwrap_err();
        assert!(matches!(err, ValidationError::WrongContribution { .. }));
    }

    #[test]
    fn duplicate_path_fine_for_max() {
        let mut ov = direct_paper_overlay();
        let cw = ov.writer(NodeId(2)).unwrap();
        let p = ov.add_partial(&[cw]);
        let ar = ov.reader(NodeId(0)).unwrap();
        ov.add_edge(p, ar, Sign::Pos);
        validate(&ov, max_props()).unwrap();
    }

    #[test]
    fn negative_edge_cancels_duplicate() {
        let mut ov = direct_paper_overlay();
        // Give reader a a partial over {c, d} plus direct edges already
        // present: cancel the duplicates with negative edges.
        let cw = ov.writer(NodeId(2)).unwrap();
        let dw = ov.writer(NodeId(3)).unwrap();
        let p = ov.add_partial(&[cw, dw]);
        let ar = ov.reader(NodeId(0)).unwrap();
        ov.add_edge(p, ar, Sign::Pos);
        ov.add_edge(cw, ar, Sign::Neg);
        ov.add_edge(dw, ar, Sign::Neg);
        validate(&ov, sum_props()).unwrap();
    }

    #[test]
    fn negative_edge_rejected_for_max() {
        let mut ov = direct_paper_overlay();
        let cw = ov.writer(NodeId(2)).unwrap();
        let ar = ov.reader(NodeId(0)).unwrap();
        ov.add_edge(cw, ar, Sign::Neg);
        let err = validate(&ov, max_props()).unwrap_err();
        assert!(matches!(err, ValidationError::NegativeEdgeNotAllowed(_)));
    }

    #[test]
    fn reader_feeding_node_rejected() {
        let mut ov = direct_paper_overlay();
        let ar = ov.reader(NodeId(0)).unwrap();
        let br = ov.reader(NodeId(1)).unwrap();
        // Force an illegal edge reader → reader (bypassing add_partial's
        // assertion by adding a raw edge).
        ov.add_edge(ar, br, Sign::Pos);
        let err = validate(&ov, sum_props()).unwrap_err();
        assert_eq!(err, ValidationError::ReaderWithOutput(ar));
    }
}
