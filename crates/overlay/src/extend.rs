//! Live overlay extension for multi-query attach (§3's aggregation sharing
//! exercised at *runtime*, not just at plan time).
//!
//! When a new ego-centric query attaches to a running system whose overlay
//! already serves other queries with the same window and neighborhood, the
//! new query's readers can reuse two kinds of existing structure:
//!
//! * **writers** — a data node that already has a writer keeps it; its
//!   window buffer and PAO are already warm;
//! * **partial aggregation nodes** — any live partial whose coverage is a
//!   subset of the new reader's (remaining) input set contributes its
//!   already-materialized PAO with a single positive edge, exactly the
//!   sharing opportunity §3 mines at plan time.
//!
//! [`extend_with_readers`] appends the delta (fresh writers, fresh readers,
//! edges) to an overlay in place. The arena is append-only under extension —
//! existing [`OverlayId`]s stay valid, which is what lets the engine carry
//! PAO state across an attach by index.
//!
//! [`used_subtree`] computes the transitive input closure of a query's
//! readers — the set of overlay nodes whose state the query depends on —
//! and [`RefCounts`] tracks per-node query reference counts so detach can
//! retire exactly the nodes no remaining query reads (the ISSUE's "dropping
//! one query never tears down PAOs another still reads").

use crate::overlay::{Overlay, OverlayId, OverlayKind};
use eagr_agg::Sign;
use eagr_graph::NodeId;
use eagr_util::{FastMap, FastSet};

/// What [`extend_with_readers`] added to (and reused from) the overlay.
#[derive(Clone, Debug, Default)]
pub struct ExtendOutcome {
    /// Overlay ids of writers created for data nodes that had none.
    pub new_writers: Vec<OverlayId>,
    /// Overlay ids of readers created for the attaching query.
    pub new_readers: Vec<OverlayId>,
    /// Readers the new query shares verbatim with an existing query
    /// (same data node, same stratum ⇒ same answer stream).
    pub reused_readers: usize,
    /// Existing partial aggregation nodes wired into fresh readers.
    pub reused_partials: usize,
    /// Writer inputs satisfied through reused partials rather than fresh
    /// direct edges — the numerator of the PAO-reuse fraction.
    pub covered_by_reuse: usize,
    /// Fresh direct writer → reader edges.
    pub direct_edges: usize,
}

impl ExtendOutcome {
    /// Fraction of the fresh readers' input slots served by
    /// already-materialized PAOs (reused partials) instead of new direct
    /// edges. `0` when the extension added no reader inputs at all.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.covered_by_reuse + self.direct_edges;
        if total == 0 {
            0.0
        } else {
            self.covered_by_reuse as f64 / total as f64
        }
    }
}

/// Extend a live overlay with readers for an attaching query.
///
/// `wants` lists `(reader data node, its neighborhood input nodes)` pairs —
/// the same shape [`eagr_graph::BipartiteGraph::build`] produces. Pairs
/// whose input list is empty are skipped (nothing to aggregate), and pairs
/// whose data node already has a reader are counted as reused and left
/// untouched: within one stratum (same window + neighborhood) an existing
/// reader already computes exactly the attaching query's answer.
///
/// For each genuinely new reader the extension (a) creates writers for
/// input nodes that lack one, then (b) greedily wires in existing partial
/// aggregation nodes — largest coverage first, pairwise disjoint, each
/// fully contained in the still-uncovered input set — and (c) connects the
/// remainder with direct writer edges. Greedy subset cover is the same
/// shape as IOB's cover step (§3.2.5), restricted to already-existing
/// partials.
///
/// Only partials whose input coverages partition their own coverage are
/// reused (each covered writer contributes exactly once), keeping the
/// §2.2.1 net-contribution invariant for duplicate-sensitive aggregates.
pub fn extend_with_readers(ov: &mut Overlay, wants: &[(NodeId, Vec<NodeId>)]) -> ExtendOutcome {
    let mut out = ExtendOutcome::default();

    // Index live, reusable partials by covered data-node id. A partial is
    // reusable when every input edge is positive and its inputs' coverages
    // partition its own coverage (no internal duplication).
    let mut by_cover: FastMap<u32, Vec<OverlayId>> = FastMap::default();
    for p in ov.ids().collect::<Vec<_>>() {
        if !matches!(ov.kind(p), OverlayKind::Partial) {
            continue;
        }
        let cov = ov.coverage(p);
        if cov.is_empty() {
            continue;
        }
        let all_pos = ov.inputs(p).iter().all(|&(_, s)| s == Sign::Pos);
        let input_cov: usize = ov
            .inputs(p)
            .iter()
            .map(|&(i, _)| ov.coverage(i).len())
            .sum();
        if !all_pos || input_cov != cov.len() {
            continue;
        }
        for &w in cov {
            by_cover.entry(w).or_default().push(p);
        }
    }

    for (r, neighbors) in wants {
        if neighbors.is_empty() {
            continue; // mirror BipartiteGraph::build — nothing to aggregate
        }
        if ov.reader(*r).is_some() {
            out.reused_readers += 1;
            continue;
        }
        for &w in neighbors {
            if ov.writer(w).is_none() {
                out.new_writers.push(ov.add_writer(w));
            }
        }
        let rid = ov.add_reader(*r);
        out.new_readers.push(rid);

        let mut remaining: FastSet<u32> = neighbors.iter().map(|w| w.0).collect();
        // Candidate partials: any that cover at least one wanted writer and
        // sit entirely inside the wanted set.
        let mut cands: Vec<OverlayId> = Vec::new();
        let mut seen: FastSet<OverlayId> = FastSet::default();
        for &w in remaining.iter() {
            for &p in by_cover.get(&w).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(p) && ov.coverage(p).iter().all(|c| remaining.contains(c)) {
                    cands.push(p);
                }
            }
        }
        // Largest first; id as deterministic tie-break.
        cands.sort_by_key(|&p| (std::cmp::Reverse(ov.coverage(p).len()), p.0));
        for p in cands {
            let cov = ov.coverage(p);
            if cov.len() > remaining.len() || !cov.iter().all(|c| remaining.contains(c)) {
                continue; // an earlier (larger) pick already claimed part of it
            }
            for c in cov {
                remaining.remove(c);
            }
            out.covered_by_reuse += ov.coverage(p).len();
            out.reused_partials += 1;
            ov.add_edge(p, rid, Sign::Pos);
        }
        for &w in neighbors {
            if remaining.remove(&w.0) {
                let wid = ov.writer(w).expect("writer ensured above");
                ov.add_edge(wid, rid, Sign::Pos);
                out.direct_edges += 1;
            }
        }
    }
    out
}

/// The transitive input closure of `roots`: every overlay node whose state
/// the rooted readers depend on, along edges of *either* sign (a negative
/// edge's source PAO is subtracted at read time and must stay alive too).
/// Returned sorted and deduplicated; includes the roots themselves.
pub fn used_subtree(ov: &Overlay, roots: &[OverlayId]) -> Vec<OverlayId> {
    let mut seen: FastSet<OverlayId> = FastSet::default();
    let mut stack: Vec<OverlayId> = Vec::new();
    for &r in roots {
        if !ov.is_retired(r) && seen.insert(r) {
            stack.push(r);
        }
    }
    while let Some(n) = stack.pop() {
        for &(src, _sign) in ov.inputs(n) {
            if seen.insert(src) {
                stack.push(src);
            }
        }
    }
    let mut used: Vec<OverlayId> = seen.into_iter().collect();
    used.sort_unstable();
    used
}

/// Per-overlay-node query reference counts. Each attached query acquires
/// its [`used_subtree`]; detach releases it and learns which nodes dropped
/// to zero (safe to retire: any live downstream reader would still hold a
/// reference on every node upstream of it).
#[derive(Clone, Debug, Default)]
pub struct RefCounts {
    counts: Vec<u32>,
}

impl RefCounts {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow to cover at least `n` overlay slots (new slots start at zero).
    pub fn ensure_len(&mut self, n: usize) {
        if self.counts.len() < n {
            self.counts.resize(n, 0);
        }
    }

    /// Current count for a node (zero if never acquired).
    pub fn count(&self, n: OverlayId) -> u32 {
        self.counts.get(n.idx()).copied().unwrap_or(0)
    }

    /// Increment every node in `nodes` (deduplicated by the caller;
    /// [`used_subtree`] output already is).
    pub fn acquire(&mut self, nodes: &[OverlayId]) {
        if let Some(max) = nodes.iter().map(|n| n.idx()).max() {
            self.ensure_len(max + 1);
        }
        for n in nodes {
            self.counts[n.idx()] += 1;
        }
    }

    /// Decrement every node in `nodes`; returns the nodes that reached
    /// zero, in ascending id order.
    pub fn release(&mut self, nodes: &[OverlayId]) -> Vec<OverlayId> {
        let mut zeroed = Vec::new();
        for &n in nodes {
            let c = &mut self.counts[n.idx()];
            debug_assert!(*c > 0, "release of unacquired node {n:?}");
            *c = c.saturating_sub(1);
            if *c == 0 {
                zeroed.push(n);
            }
        }
        zeroed.sort_unstable();
        zeroed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// writers a=0,b=1,c=2 · partial p={a,b} · reader r3 = p + c.
    fn base_overlay() -> (Overlay, OverlayId, [OverlayId; 3]) {
        let mut ov = Overlay::default();
        let wa = ov.add_writer(NodeId(0));
        let wb = ov.add_writer(NodeId(1));
        let wc = ov.add_writer(NodeId(2));
        let p = ov.add_partial(&[wa, wb]);
        let r = ov.add_reader(NodeId(3));
        ov.add_edge(p, r, Sign::Pos);
        ov.add_edge(wc, r, Sign::Pos);
        (ov, p, [wa, wb, wc])
    }

    #[test]
    fn extension_reuses_covering_partial_and_adds_delta() {
        let (mut ov, p, [wa, wb, _]) = base_overlay();
        let before = ov.live_node_count();
        // New reader over {a, b, d}: reuses p, adds writer d + one direct edge.
        let out = extend_with_readers(
            &mut ov,
            &[(NodeId(4), vec![NodeId(0), NodeId(1), NodeId(9)])],
        );
        assert_eq!(out.new_writers.len(), 1);
        assert_eq!(out.new_readers.len(), 1);
        assert_eq!(out.reused_partials, 1);
        assert_eq!(out.covered_by_reuse, 2);
        assert_eq!(out.direct_edges, 1);
        assert!(out.reuse_fraction() > 0.5);
        assert_eq!(ov.live_node_count(), before + 2);
        let rid = out.new_readers[0];
        let mut ins: Vec<OverlayId> = ov.inputs(rid).iter().map(|&(i, _)| i).collect();
        ins.sort_unstable();
        let mut expect = vec![p, out.new_writers[0]];
        expect.sort_unstable();
        assert_eq!(ins, expect);
        // Existing ids untouched.
        assert_eq!(ov.writer(NodeId(0)), Some(wa));
        assert_eq!(ov.writer(NodeId(1)), Some(wb));
    }

    #[test]
    fn existing_reader_is_shared_not_duplicated() {
        let (mut ov, _, _) = base_overlay();
        let before = ov.live_node_count();
        let out = extend_with_readers(&mut ov, &[(NodeId(3), vec![NodeId(0), NodeId(2)])]);
        assert_eq!(out.reused_readers, 1);
        assert!(out.new_readers.is_empty());
        assert_eq!(ov.live_node_count(), before);
    }

    #[test]
    fn empty_neighborhoods_are_skipped() {
        let (mut ov, _, _) = base_overlay();
        let out = extend_with_readers(&mut ov, &[(NodeId(7), vec![])]);
        assert!(out.new_readers.is_empty() && out.new_writers.is_empty());
        assert!(ov.reader(NodeId(7)).is_none());
    }

    #[test]
    fn disjoint_greedy_never_double_counts() {
        let mut ov = Overlay::default();
        let ws: Vec<OverlayId> = (0..4).map(|i| ov.add_writer(NodeId(i))).collect();
        let big = ov.add_partial(&[ws[0], ws[1], ws[2]]);
        let small = ov.add_partial(&[ws[1], ws[2]]); // overlaps big
        let out = extend_with_readers(
            &mut ov,
            &[(NodeId(10), (0..4).map(NodeId).collect::<Vec<_>>())],
        );
        // big (3) picked first; small overlaps it and must be skipped.
        assert_eq!(out.reused_partials, 1);
        assert_eq!(out.covered_by_reuse, 3);
        assert_eq!(out.direct_edges, 1);
        let rid = out.new_readers[0];
        let ins: Vec<OverlayId> = ov.inputs(rid).iter().map(|&(i, _)| i).collect();
        assert!(ins.contains(&big) && !ins.contains(&small));
    }

    #[test]
    fn used_subtree_closes_over_both_signs() {
        let mut ov = Overlay::default();
        let wa = ov.add_writer(NodeId(0));
        let wb = ov.add_writer(NodeId(1));
        let p = ov.add_partial(&[wa, wb]);
        let r = ov.add_reader(NodeId(2));
        ov.add_edge(p, r, Sign::Pos);
        ov.add_edge(wb, r, Sign::Neg); // superset-minus shape
        let used = used_subtree(&ov, &[r]);
        assert_eq!(used, vec![wa, wb, p, r]);
    }

    #[test]
    fn refcounts_release_reports_zeroed_nodes_only() {
        let mut rc = RefCounts::new();
        let a = OverlayId(0);
        let b = OverlayId(1);
        rc.acquire(&[a, b]);
        rc.acquire(&[a]);
        assert_eq!(rc.count(a), 2);
        assert_eq!(rc.release(&[a, b]), vec![b]);
        assert_eq!(rc.release(&[a]), vec![a]);
        assert_eq!(rc.count(a), 0);
    }
}
