//! The aggregation overlay graph `OG(V'', E'')` (paper §2.2.1).
//!
//! Three kinds of nodes — writers, readers, and partial aggregators — form a
//! DAG whose edges carry a [`Sign`]: positive edges contribute an upstream
//! PAO, negative edges subtract it (§2.2.1's "negative edges"). The overlay
//! is an arena of `u32`-indexed nodes; construction algorithms mutate it
//! through `&mut self`, and execution freezes it behind `&self`.
//!
//! Invariants maintained by every construction path in this crate:
//!
//! * the overlay is acyclic; writers are sources, readers are sinks;
//! * readers never feed other nodes (§3.2.5 footnote);
//! * negative edges point only at readers, and only exist for subtractable
//!   aggregates;
//! * for every (writer, reader) pair the *net* contribution (signed path
//!   count) is exactly 1 for duplicate-sensitive aggregates and ≥ 1 for
//!   duplicate-insensitive ones ([`mod@crate::validate`] checks this).

use eagr_agg::Sign;
use eagr_graph::{BipartiteGraph, NodeId};
use eagr_util::FastMap;

/// Index of a node in the overlay arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OverlayId(pub u32);

impl OverlayId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for OverlayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// What an overlay node is (paper §2.2.1's three node types).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlayKind {
    /// A writer `v_w`, tied to a data-graph node. Always annotated push.
    Writer(NodeId),
    /// A reader `v_r`, tied to a data-graph node satisfying the query
    /// predicate; holds the query answer for that node.
    Reader(NodeId),
    /// A partial aggregation ("virtual") node introduced by overlay
    /// construction.
    Partial,
}

/// A directed, signed overlay edge endpoint.
pub type SignedEdge = (OverlayId, Sign);

/// The aggregation overlay graph.
#[derive(Clone, Debug)]
pub struct Overlay {
    kinds: Vec<OverlayKind>,
    /// Upstream endpoints per node (the node's *inputs*).
    inputs: Vec<Vec<SignedEdge>>,
    /// Downstream endpoints per node (the node's *consumers*).
    outputs: Vec<Vec<SignedEdge>>,
    /// Data node → writer overlay node.
    writer_ids: FastMap<NodeId, OverlayId>,
    /// Data node → reader overlay node.
    reader_ids: FastMap<NodeId, OverlayId>,
    /// `coverage[n]` = I(n): sorted data-graph writer ids the node
    /// transitively aggregates (positive edges only). Writers: singleton;
    /// readers: not maintained (derivable; their net coverage is validated
    /// instead).
    coverage: Vec<Vec<u32>>,
    /// Edge count of the bipartite graph this overlay was derived from —
    /// the denominator of the sharing index (§3.1).
    ag_edge_count: usize,
    /// Live edge count (positive + negative).
    edge_count: usize,
    /// Tombstones for retired nodes (dynamic maintenance, §3.3). Retired
    /// ids stay allocated so indexes remain stable.
    dead: Vec<bool>,
}

impl Default for Overlay {
    /// An empty overlay (no nodes, zero bipartite denominator); grown via
    /// [`add_writer`](Self::add_writer) / [`add_reader`](Self::add_reader)
    /// / [`add_partial`](Self::add_partial) — used by tests and by live
    /// extension ([`crate::extend`]).
    fn default() -> Self {
        Self::empty(0)
    }
}

impl Overlay {
    /// The *direct* overlay for a bipartite graph: one writer per active
    /// writer, one reader per reader, and a positive edge writer → reader
    /// for every bipartite edge. This is both the starting point of the
    /// VNM/IOB algorithms and the execution structure of the all-push /
    /// all-pull baselines (§5.1).
    pub fn direct_from_bipartite(ag: &BipartiteGraph) -> Self {
        let mut ov = Self::empty(ag.edge_count());
        for w in ag.active_writers() {
            ov.add_writer(w);
        }
        for (i, r, inputs) in ag.iter() {
            let rid = ov.add_reader(r);
            debug_assert_eq!(i + ag.active_writers().len(), rid.idx());
            for &w in inputs {
                let wid = ov.writer(w).expect("writer added above");
                ov.add_edge(wid, rid, Sign::Pos);
            }
        }
        ov
    }

    /// An overlay with writers and readers (no edges yet); used by IOB,
    /// which adds readers one at a time.
    pub fn skeleton_from_bipartite(ag: &BipartiteGraph) -> Self {
        let mut ov = Self::empty(ag.edge_count());
        for w in ag.active_writers() {
            ov.add_writer(w);
        }
        ov
    }

    fn empty(ag_edge_count: usize) -> Self {
        Self {
            kinds: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            writer_ids: FastMap::default(),
            reader_ids: FastMap::default(),
            coverage: Vec::new(),
            ag_edge_count,
            edge_count: 0,
            dead: Vec::new(),
        }
    }

    fn push_node(&mut self, kind: OverlayKind, coverage: Vec<u32>) -> OverlayId {
        let id = OverlayId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.inputs.push(Vec::new());
        self.outputs.push(Vec::new());
        self.coverage.push(coverage);
        self.dead.push(false);
        id
    }

    /// Retire a node: remove all its incident edges and tombstone it.
    /// Its id stays allocated (indexes remain stable) but it disappears
    /// from [`ids`](Self::ids), [`readers`](Self::readers),
    /// [`writers`](Self::writers), and the writer/reader lookups.
    pub fn retire_node(&mut self, n: OverlayId) {
        let outs = self.outputs[n.idx()].clone();
        for (t, s) in outs {
            self.remove_edge(n, t, s);
        }
        let ins = self.inputs[n.idx()].clone();
        for (f, s) in ins {
            self.remove_edge(f, n, s);
        }
        match self.kinds[n.idx()] {
            OverlayKind::Writer(w) => {
                self.writer_ids.remove(&w);
            }
            OverlayKind::Reader(r) => {
                self.reader_ids.remove(&r);
            }
            OverlayKind::Partial => {}
        }
        self.coverage[n.idx()].clear();
        self.dead[n.idx()] = true;
    }

    /// Whether a node has been retired.
    #[inline]
    pub fn is_retired(&self, n: OverlayId) -> bool {
        self.dead[n.idx()]
    }

    /// Add a writer node for data node `w`.
    ///
    /// # Panics
    /// Panics if `w` already has a writer node.
    pub fn add_writer(&mut self, w: NodeId) -> OverlayId {
        let id = self.push_node(OverlayKind::Writer(w), vec![w.0]);
        let prev = self.writer_ids.insert(w, id);
        assert!(prev.is_none(), "duplicate writer for {w:?}");
        id
    }

    /// Add a reader node for data node `r`.
    ///
    /// # Panics
    /// Panics if `r` already has a reader node.
    pub fn add_reader(&mut self, r: NodeId) -> OverlayId {
        let id = self.push_node(OverlayKind::Reader(r), Vec::new());
        let prev = self.reader_ids.insert(r, id);
        assert!(prev.is_none(), "duplicate reader for {r:?}");
        id
    }

    /// Add a partial aggregation node whose inputs are `items` (positive
    /// edges). Coverage is the union of the items' coverage.
    ///
    /// # Panics
    /// Panics if any item is a reader (readers cannot feed aggregators).
    pub fn add_partial(&mut self, items: &[OverlayId]) -> OverlayId {
        let mut cov: Vec<u32> = Vec::new();
        for &it in items {
            assert!(
                !matches!(self.kinds[it.idx()], OverlayKind::Reader(_)),
                "reader cannot feed an aggregator"
            );
            cov.extend_from_slice(&self.coverage[it.idx()]);
        }
        cov.sort_unstable();
        cov.dedup();
        let id = self.push_node(OverlayKind::Partial, cov);
        for &it in items {
            self.add_edge(it, id, Sign::Pos);
        }
        id
    }

    /// Add a signed edge `from → to`. (Readers feeding other nodes violate
    /// the overlay invariant; [`mod@crate::validate`] reports it.)
    pub fn add_edge(&mut self, from: OverlayId, to: OverlayId, sign: Sign) {
        self.outputs[from.idx()].push((to, sign));
        self.inputs[to.idx()].push((from, sign));
        self.edge_count += 1;
    }

    /// Remove the signed edge `from → to` (first occurrence). Returns
    /// whether an edge was removed.
    pub fn remove_edge(&mut self, from: OverlayId, to: OverlayId, sign: Sign) -> bool {
        let outs = &mut self.outputs[from.idx()];
        let Some(pos) = outs.iter().position(|&(t, s)| t == to && s == sign) else {
            return false;
        };
        outs.swap_remove(pos);
        let ins = &mut self.inputs[to.idx()];
        let ipos = ins
            .iter()
            .position(|&(f, s)| f == from && s == sign)
            .expect("edge lists out of sync");
        ins.swap_remove(ipos);
        self.edge_count -= 1;
        true
    }

    /// Number of overlay nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of overlay edges (positive + negative) — the numerator of the
    /// sharing index.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Edge count of the originating bipartite graph.
    pub fn ag_edge_count(&self) -> usize {
        self.ag_edge_count
    }

    /// The sharing index `1 − |E''| / |E'|` (§3.1).
    pub fn sharing_index(&self) -> f64 {
        if self.ag_edge_count == 0 {
            0.0
        } else {
            1.0 - self.edge_count as f64 / self.ag_edge_count as f64
        }
    }

    /// Kind of a node.
    #[inline]
    pub fn kind(&self, n: OverlayId) -> OverlayKind {
        self.kinds[n.idx()]
    }

    /// Upstream signed endpoints of `n`.
    #[inline]
    pub fn inputs(&self, n: OverlayId) -> &[SignedEdge] {
        &self.inputs[n.idx()]
    }

    /// Downstream signed endpoints of `n`.
    #[inline]
    pub fn outputs(&self, n: OverlayId) -> &[SignedEdge] {
        &self.outputs[n.idx()]
    }

    /// Fan-in of `n` (the `k` of the cost functions `H(k)`/`L(k)`).
    #[inline]
    pub fn fan_in(&self, n: OverlayId) -> usize {
        self.inputs[n.idx()].len()
    }

    /// Writer overlay node for data node `w`, if present.
    pub fn writer(&self, w: NodeId) -> Option<OverlayId> {
        self.writer_ids.get(&w).copied()
    }

    /// Reader overlay node for data node `r`, if present.
    pub fn reader(&self, r: NodeId) -> Option<OverlayId> {
        self.reader_ids.get(&r).copied()
    }

    /// `I(n)` — sorted data-graph writer ids node `n` transitively
    /// aggregates along positive edges (empty for readers: validated, not
    /// stored).
    pub fn coverage(&self, n: OverlayId) -> &[u32] {
        &self.coverage[n.idx()]
    }

    /// All live overlay ids.
    pub fn ids(&self) -> impl Iterator<Item = OverlayId> + '_ {
        (0..self.kinds.len() as u32)
            .map(OverlayId)
            .filter(|id| !self.dead[id.idx()])
    }

    /// Number of live nodes (excludes tombstones).
    pub fn live_node_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// All live reader ids with their data node.
    pub fn readers(&self) -> impl Iterator<Item = (OverlayId, NodeId)> + '_ {
        self.kinds.iter().enumerate().filter_map(|(i, k)| match k {
            OverlayKind::Reader(r) if !self.dead[i] => Some((OverlayId(i as u32), *r)),
            _ => None,
        })
    }

    /// All live writer ids with their data node.
    pub fn writers(&self) -> impl Iterator<Item = (OverlayId, NodeId)> + '_ {
        self.kinds.iter().enumerate().filter_map(|(i, k)| match k {
            OverlayKind::Writer(w) if !self.dead[i] => Some((OverlayId(i as u32), *w)),
            _ => None,
        })
    }

    /// Number of live partial aggregation nodes.
    pub fn partial_count(&self) -> usize {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(i, k)| matches!(k, OverlayKind::Partial) && !self.dead[*i])
            .count()
    }

    /// Remove the writer coverage entry `w` from a node's coverage list
    /// (node deletion maintenance, §3.3).
    pub(crate) fn coverage_remove(&mut self, n: OverlayId, w: u32) {
        if let Ok(pos) = self.coverage[n.idx()].binary_search(&w) {
            self.coverage[n.idx()].remove(pos);
        }
    }

    /// A topological order (writers first). Panics if the overlay has a
    /// cycle — construction algorithms must never produce one.
    pub fn topo_order(&self) -> Vec<OverlayId> {
        let n = self.kinds.len();
        let mut indeg: Vec<u32> = (0..n).map(|i| self.inputs[i].len() as u32).collect();
        let mut queue: Vec<OverlayId> = (0..n as u32)
            .map(OverlayId)
            .filter(|id| indeg[id.idx()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &(v, _) in &self.outputs[u.idx()] {
                indeg[v.idx()] -= 1;
                if indeg[v.idx()] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(order.len(), n, "overlay contains a cycle");
        order
    }

    /// Approximate heap footprint in bytes (Fig 10b memory accounting).
    pub fn memory_bytes(&self) -> usize {
        let edge = std::mem::size_of::<SignedEdge>();
        let mut total = self.kinds.len()
            * (std::mem::size_of::<OverlayKind>() + 2 * std::mem::size_of::<Vec<SignedEdge>>());
        for i in 0..self.kinds.len() {
            total += (self.inputs[i].capacity() + self.outputs[i].capacity()) * edge;
            total += self.coverage[i].capacity() * 4;
        }
        total += (self.writer_ids.len() + self.reader_ids.len()) * 16;
        total
    }
}

// --- wire codecs -----------------------------------------------------------
//
// The multi-process shard transport ships the whole overlay to each shard
// host at launch (and again on a topology swap), so hosts route cascades
// with exactly the coordinator's structure. The impls live here because the
// fields are private — the encoding *is* the struct, field for field.

use eagr_util::wire::{Wire, WireError};

impl Wire for OverlayId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(OverlayId(u32::decode(buf)?))
    }
}

impl Wire for OverlayKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OverlayKind::Writer(n) => {
                out.push(0);
                n.encode(out);
            }
            OverlayKind::Reader(n) => {
                out.push(1);
                n.encode(out);
            }
            OverlayKind::Partial => out.push(2),
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(OverlayKind::Writer(NodeId::decode(buf)?)),
            1 => Ok(OverlayKind::Reader(NodeId::decode(buf)?)),
            2 => Ok(OverlayKind::Partial),
            tag => Err(WireError::BadTag {
                what: "OverlayKind",
                tag,
            }),
        }
    }
}

impl Wire for Overlay {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kinds.encode(out);
        self.inputs.encode(out);
        self.outputs.encode(out);
        self.writer_ids.encode(out);
        self.reader_ids.encode(out);
        self.coverage.encode(out);
        self.ag_edge_count.encode(out);
        self.edge_count.encode(out);
        self.dead.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Overlay {
            kinds: Wire::decode(buf)?,
            inputs: Wire::decode(buf)?,
            outputs: Wire::decode(buf)?,
            writer_ids: Wire::decode(buf)?,
            reader_ids: Wire::decode(buf)?,
            coverage: Wire::decode(buf)?,
            ag_edge_count: Wire::decode(buf)?,
            edge_count: Wire::decode(buf)?,
            dead: Wire::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_graph::{paper_example_graph, Neighborhood};

    fn paper_ag() -> BipartiteGraph {
        BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true)
    }

    #[test]
    fn direct_overlay_mirrors_ag() {
        let ag = paper_ag();
        let ov = Overlay::direct_from_bipartite(&ag);
        // 6 active writers (g writes to nobody) + 7 readers.
        assert_eq!(ov.node_count(), 13);
        assert_eq!(ov.edge_count(), 35);
        assert_eq!(ov.ag_edge_count(), 35);
        assert_eq!(ov.sharing_index(), 0.0);
        assert_eq!(ov.partial_count(), 0);
    }

    #[test]
    fn partial_node_shares_edges() {
        // Reproduce Fig 1(d)'s PA1: aggregate {a_w, b_w, c_w} and feed the
        // readers whose lists contain all three.
        let ag = paper_ag();
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let items: Vec<OverlayId> = [0u32, 1, 2]
            .iter()
            .map(|&w| ov.writer(NodeId(w)).unwrap())
            .collect();
        let before = ov.edge_count();
        let pa1 = ov.add_partial(&items);
        assert_eq!(ov.coverage(pa1), &[0, 1, 2]);
        // Rewire reader g_r: drop its three direct edges, add one from PA1.
        let gr = ov.reader(NodeId(6)).unwrap();
        for &it in &items {
            assert!(ov.remove_edge(it, gr, Sign::Pos));
        }
        ov.add_edge(pa1, gr, Sign::Pos);
        // Net: +3 (into PA1) −3 (removed) +1 (PA1→g_r) = +1 edge here, but
        // each further reader sharing PA1 saves 2 more.
        assert_eq!(ov.edge_count(), before + 1);
    }

    #[test]
    fn sharing_index_improves_with_sharing() {
        let ag = paper_ag();
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let items: Vec<OverlayId> = [0u32, 1, 2]
            .iter()
            .map(|&w| ov.writer(NodeId(w)).unwrap())
            .collect();
        let pa1 = ov.add_partial(&items);
        // Readers c,d,e,f,g all contain {a,b,c} in their input lists —
        // exactly the five readers PA1 serves in Fig 1(d).
        for r in [2u32, 3, 4, 5, 6] {
            let rid = ov.reader(NodeId(r)).unwrap();
            for &it in &items {
                assert!(
                    ov.remove_edge(it, rid, Sign::Pos),
                    "reader {r} had the edge"
                );
            }
            ov.add_edge(pa1, rid, Sign::Pos);
        }
        // 5 readers × 3 edges = 15 removed; 3 + 5 added ⇒ 35 − 15 + 8 = 28.
        assert_eq!(ov.edge_count(), 28);
        assert!(
            (ov.sharing_index() - 0.2).abs() < 1e-9,
            "SI = 1 − 28/35 = 0.2"
        );
    }

    #[test]
    fn topo_order_writers_first() {
        let ag = paper_ag();
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let w: Vec<OverlayId> = ov.writers().map(|(id, _)| id).collect();
        let p = ov.add_partial(&w[..2]);
        let order = ov.topo_order();
        let pos = |id: OverlayId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(w[0]) < pos(p));
        assert!(pos(w[1]) < pos(p));
    }

    #[test]
    #[should_panic(expected = "reader cannot feed an aggregator")]
    fn reader_cannot_feed_partial() {
        let ag = paper_ag();
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let r = ov.reader(NodeId(0)).unwrap();
        ov.add_partial(&[r]);
    }

    #[test]
    fn remove_missing_edge_is_noop() {
        let ag = paper_ag();
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let w = ov.writer(NodeId(0)).unwrap();
        let r = ov.reader(NodeId(0)).unwrap();
        // No edge a_w → a_r (a ∉ N(a)).
        assert!(!ov.remove_edge(w, r, Sign::Pos));
        assert_eq!(ov.edge_count(), 35);
    }

    #[test]
    fn negative_edges_counted() {
        let ag = paper_ag();
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let w = ov.writer(NodeId(0)).unwrap();
        let r = ov.reader(NodeId(0)).unwrap();
        let before = ov.edge_count();
        ov.add_edge(w, r, Sign::Neg);
        assert_eq!(ov.edge_count(), before + 1);
        assert!(ov.remove_edge(w, r, Sign::Neg));
        assert_eq!(ov.edge_count(), before);
    }

    #[test]
    fn memory_accounting_positive() {
        let ag = paper_ag();
        let ov = Overlay::direct_from_bipartite(&ag);
        assert!(ov.memory_bytes() > 0);
    }
}
