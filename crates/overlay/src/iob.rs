//! IOB — Incremental Overlay Building (paper §3.2.5).
//!
//! IOB starts from an overlay containing only the singleton writer nodes and
//! adds one reader at a time (in shingle order). For each reader it reuses
//! as much existing partial aggregation as possible: a greedy heuristic for
//! minimum *exact* set cover over the coverage sets `I(ovl)` of the overlay
//! built so far. When the best-overlapping node only partially fits, the
//! overlay is restructured — a new node `v'` is carved out of the overlap
//! and rerouted exactly as Fig 4 illustrates.
//!
//! Two indexes make this efficient (and are reused by
//! [dynamic maintenance](crate::dynamic)):
//!
//! * the **reverse index**: writer → overlay nodes whose `I(·)` contains it,
//! * the **forward index**: a node's input list — already stored by
//!   [`Overlay`].
//!
//! Later iterations revisit each partial aggregator and locally restructure
//! it if a smaller input cover exists.

use crate::metrics::IterationStats;
use crate::overlay::{Overlay, OverlayId, OverlayKind};
use crate::shingle::shingle_order;
use eagr_graph::{BipartiteGraph, NodeId};
use eagr_util::{FastMap, FastSet};
use std::time::Instant;

/// Configuration of an IOB run.
#[derive(Clone, Debug)]
pub struct IobConfig {
    /// Outer iterations: the first inserts all readers, the rest locally
    /// restructure partial aggregators.
    pub iterations: usize,
    /// Min-hash shingles for the insertion order.
    pub num_shingles: usize,
    /// Shingle seed.
    pub seed: u64,
}

impl Default for IobConfig {
    fn default() -> Self {
        Self {
            iterations: 4,
            num_shingles: 2,
            seed: 0xEA67,
        }
    }
}

/// An overlay paired with the IOB reverse and forward indexes, supporting
/// incremental reader insertion and local restructuring.
///
/// Readers participate in the reverse index too: the paper's Fig 4 finds
/// "I(e_r)" as the best overlap for g_r and carves aggregator v1 out of
/// e_r's input structure — but a reader is never *used* as a cover node
/// directly ("we do not allow a reader node to directly form an input to an
/// aggregator node"); its pieces are.
pub struct IobState {
    /// The overlay under construction/maintenance.
    pub overlay: Overlay,
    /// Writer data id → live aggregation nodes (partials *and* readers)
    /// whose coverage contains it.
    reverse: FastMap<u32, Vec<OverlayId>>,
    /// Coverage of each reader (the overlay itself only tracks coverage of
    /// writers and partials).
    reader_cov: FastMap<u32, Vec<u32>>,
}

impl IobState {
    /// Start from a writer-only skeleton.
    pub fn new(ag: &BipartiteGraph) -> Self {
        Self {
            overlay: Overlay::skeleton_from_bipartite(ag),
            reverse: FastMap::default(),
            reader_cov: FastMap::default(),
        }
    }

    /// Wrap an existing overlay (e.g. one built by VNM) so it can be
    /// incrementally maintained; rebuilds the indexes from coverage. Reader
    /// coverage is reconstructed as the net-positive writer set of the
    /// reader's inputs (negative edges subtract).
    pub fn from_overlay(overlay: Overlay) -> Self {
        let mut reverse: FastMap<u32, Vec<OverlayId>> = FastMap::default();
        let mut reader_cov: FastMap<u32, Vec<u32>> = FastMap::default();
        for n in overlay.ids().collect::<Vec<_>>() {
            match overlay.kind(n) {
                OverlayKind::Partial => {
                    for &w in overlay.coverage(n) {
                        reverse.entry(w).or_default().push(n);
                    }
                }
                OverlayKind::Reader(_) => {
                    let mut net: FastMap<u32, i64> = FastMap::default();
                    for &(f, sign) in overlay.inputs(n) {
                        let d = if sign.is_negative() { -1 } else { 1 };
                        for &w in overlay.coverage(f) {
                            *net.entry(w).or_insert(0) += d;
                        }
                    }
                    let mut cov: Vec<u32> = net
                        .into_iter()
                        .filter(|&(_, c)| c > 0)
                        .map(|(w, _)| w)
                        .collect();
                    cov.sort_unstable();
                    for &w in &cov {
                        reverse.entry(w).or_default().push(n);
                    }
                    reader_cov.insert(n.0, cov);
                }
                OverlayKind::Writer(_) => {}
            }
        }
        Self {
            overlay,
            reverse,
            reader_cov,
        }
    }

    /// Coverage of any aggregation node (partials from the overlay, readers
    /// from the side table).
    fn cov(&self, n: OverlayId) -> &[u32] {
        match self.overlay.kind(n) {
            OverlayKind::Reader(_) => self
                .reader_cov
                .get(&n.0)
                .map(|v| v.as_slice())
                .unwrap_or(&[]),
            _ => self.overlay.coverage(n),
        }
    }

    fn index_partial(&mut self, v: OverlayId) {
        for &w in self.overlay.coverage(v) {
            self.reverse.entry(w).or_default().push(v);
        }
    }

    /// Record/extend reader coverage in the side table and reverse index.
    pub(crate) fn extend_reader_cov(&mut self, rid: OverlayId, writers: &[u32]) {
        let cov = self.reader_cov.entry(rid.0).or_default();
        for &w in writers {
            if let Err(pos) = cov.binary_search(&w) {
                cov.insert(pos, w);
                self.reverse.entry(w).or_default().push(rid);
            }
        }
    }

    /// Shrink reader coverage in the side table and reverse index.
    pub(crate) fn shrink_reader_cov(&mut self, rid: OverlayId, writers: &[u32]) {
        if let Some(cov) = self.reader_cov.get_mut(&rid.0) {
            for &w in writers {
                if let Ok(pos) = cov.binary_search(&w) {
                    cov.remove(pos);
                    if let Some(list) = self.reverse.get_mut(&w) {
                        list.retain(|&x| x != rid);
                    }
                }
            }
        }
    }

    /// Forget a reader entirely (retirement).
    pub(crate) fn drop_reader_cov(&mut self, rid: OverlayId) {
        if let Some(cov) = self.reader_cov.remove(&rid.0) {
            for w in cov {
                if let Some(list) = self.reverse.get_mut(&w) {
                    list.retain(|&x| x != rid);
                }
            }
        }
    }

    /// Register `n` as covering writer `w` in the reverse index (used by
    /// dynamic maintenance for aggregates it creates directly).
    pub(crate) fn index_writer(&mut self, w: u32, n: OverlayId) {
        let e = self.reverse.entry(w).or_default();
        if !e.contains(&n) {
            e.push(n);
        }
    }

    /// Candidate partial nodes overlapping the target writer set, with
    /// overlap counts.
    fn overlap_counts(&self, targets: &FastSet<u32>) -> FastMap<OverlayId, u32> {
        let mut counts: FastMap<OverlayId, u32> = FastMap::default();
        for &w in targets {
            if let Some(nodes) = self.reverse.get(&w) {
                for &n in nodes {
                    if !self.overlay.is_retired(n) {
                        *counts.entry(n).or_insert(0) += 1;
                    }
                }
            }
        }
        counts
    }

    /// Decompose node `n` into existing sub-nodes whose coverage lies fully
    /// inside `targets` ("pieces"); descends through partial inputs whose
    /// coverage only partially overlaps. Writers at the leaves guarantee
    /// termination with exactly `I(n) ∩ targets` covered.
    fn pieces(&self, n: OverlayId, targets: &FastSet<u32>, out: &mut Vec<OverlayId>) {
        for &(inp, _sign) in self.overlay.inputs(n) {
            let cov = self.overlay.coverage(inp);
            if cov.is_empty() {
                continue;
            }
            if cov.iter().all(|w| targets.contains(w)) {
                out.push(inp);
            } else if matches!(self.overlay.kind(inp), OverlayKind::Partial) {
                self.pieces(inp, targets, out);
            }
        }
    }

    /// Ensure a writer node exists for `w` (dynamic maintenance may
    /// introduce writers that had no readers at build time).
    pub fn ensure_writer(&mut self, w: NodeId) -> OverlayId {
        match self.overlay.writer(w) {
            Some(id) => id,
            None => self.overlay.add_writer(w),
        }
    }

    /// Greedily find (or build, by restructuring) nodes covering exactly
    /// `targets`, per the §3.2.5 algorithm, and return them. The returned
    /// nodes have pairwise-disjoint coverage whose union is `targets`.
    pub fn cover(&mut self, targets: &FastSet<u32>) -> Vec<OverlayId> {
        self.cover_bounded(targets, usize::MAX)
    }

    /// [`cover`](Self::cover) restricted to candidate/piece nodes with
    /// coverage strictly smaller than `max_cov`. Refinement uses this to
    /// re-cover a partial node `v` without touching `v` itself or anything
    /// downstream of it (any node downstream of `v` has coverage ⊇ I(v),
    /// hence at least as large).
    fn cover_bounded(&mut self, targets: &FastSet<u32>, max_cov: usize) -> Vec<OverlayId> {
        let mut remaining: FastSet<u32> = targets.clone();
        let mut cover = Vec::new();
        while !remaining.is_empty() {
            let counts = self.overlap_counts(&remaining);
            let best = counts
                .iter()
                .filter(|&(n, &c)| c >= 2 && self.cov(*n).len() < max_cov)
                .max_by_key(|&(n, &c)| (c, std::cmp::Reverse(self.cov(*n).len())))
                .map(|(&n, &c)| (n, c));
            let Some((n, _count)) = best else {
                // No shared structure left: direct writer edges.
                let mut rest: Vec<u32> = remaining.drain().collect();
                rest.sort_unstable();
                for w in rest {
                    let wid = self.ensure_writer(NodeId(w));
                    cover.push(wid);
                }
                break;
            };
            let b: Vec<u32> = self.cov(n).to_vec();
            let is_reader = matches!(self.overlay.kind(n), OverlayKind::Reader(_));
            let full_subset = !is_reader && b.iter().all(|w| remaining.contains(w));
            let chosen: Vec<OverlayId> = if full_subset {
                vec![n]
            } else {
                // Partial overlap: decompose into pieces ⊆ remaining.
                let mut ps = Vec::new();
                self.pieces(n, &remaining, &mut ps);
                ps.sort_unstable_by_key(|p| p.0);
                ps.dedup();
                if max_cov != usize::MAX {
                    ps.retain(|&p| self.cov(p).len() < max_cov);
                }
                if ps.is_empty() {
                    // Every usable piece was filtered out: fall back to
                    // direct writer edges for the overlap and move on.
                    let inter: Vec<u32> = b
                        .iter()
                        .copied()
                        .filter(|w| remaining.contains(w))
                        .collect();
                    for w in inter {
                        remaining.remove(&w);
                        let wid = self.ensure_writer(NodeId(w));
                        cover.push(wid);
                    }
                    continue;
                }
                let direct: FastSet<u32> =
                    self.overlay.inputs(n).iter().map(|&(f, _)| f.0).collect();
                let all_direct = ps.iter().all(|p| direct.contains(&p.0));
                if ps.len() >= 2 && all_direct {
                    // Carve v' = I(n) ∩ remaining out of n's structure and
                    // reroute, exactly as Fig 4 does: v' replaces the pieces
                    // inside n (+2 edges net vs +|ps| for direct use — never
                    // worse for |ps| ≥ 2, and shared by future readers).
                    let vprime = self.overlay.add_partial(&ps);
                    for &p in &ps {
                        self.overlay.remove_edge(p, n, eagr_agg::Sign::Pos);
                    }
                    self.overlay.add_edge(vprime, n, eagr_agg::Sign::Pos);
                    self.index_partial(vprime);
                    vec![vprime]
                } else {
                    // Pieces buried deeper than n's direct inputs: a fresh
                    // aggregator would *add* edges without saving any, so
                    // share the pieces themselves.
                    ps
                }
            };
            for &c in &chosen {
                for &w in self.cov(c) {
                    remaining.remove(&w);
                }
                cover.push(c);
            }
        }
        cover
    }

    /// Add a reader with the given input writer list, reusing overlay
    /// structure via [`cover`](Self::cover).
    pub fn add_reader(&mut self, r: NodeId, inputs: &[NodeId]) -> OverlayId {
        let rid = self.overlay.add_reader(r);
        if inputs.is_empty() {
            return rid;
        }
        let targets: FastSet<u32> = inputs.iter().map(|w| w.0).collect();
        let cover = self.cover(&targets);
        for n in cover {
            self.overlay.add_edge(n, rid, eagr_agg::Sign::Pos);
        }
        let ws: Vec<u32> = inputs.iter().map(|w| w.0).collect();
        self.extend_reader_cov(rid, &ws);
        rid
    }

    /// One refinement pass (§3.2.5's later iterations): revisit every
    /// partial aggregator, re-cover its input set with the same carving
    /// set-cover used at insertion (restricted to strictly-smaller nodes
    /// for cycle safety), and rewire if the cover is strictly smaller.
    /// Returns the number of nodes restructured.
    pub fn refine(&mut self) -> usize {
        let partials: Vec<OverlayId> = self
            .overlay
            .ids()
            .filter(|&n| matches!(self.overlay.kind(n), OverlayKind::Partial))
            .collect();
        let mut changed = 0;
        for v in partials {
            if self.overlay.is_retired(v) || self.overlay.outputs(v).is_empty() {
                continue;
            }
            let my_cov: FastSet<u32> = self.overlay.coverage(v).iter().copied().collect();
            let my_len = my_cov.len();
            if my_len < 3 {
                continue;
            }
            // The current inputs stay in place while we search — exclude v
            // (and anything as large) via the bound; the carving may create
            // sub-aggregates shared with other parts of the overlay.
            let new_inputs = self.cover_bounded(&my_cov, my_len);
            if new_inputs.len() < self.overlay.fan_in(v) && new_inputs.iter().all(|&n| n != v) {
                let old: Vec<_> = self.overlay.inputs(v).to_vec();
                for (f, s) in old {
                    self.overlay.remove_edge(f, v, s);
                }
                for n in new_inputs {
                    self.overlay.add_edge(n, v, eagr_agg::Sign::Pos);
                }
                changed += 1;
            }
        }
        self.gc_orphans();
        changed
    }

    /// Retire partial nodes that feed nothing (after reader removal or
    /// restructuring), cascading upstream. Returns how many were retired.
    pub fn gc_orphans(&mut self) -> usize {
        let mut retired = 0;
        loop {
            let orphans: Vec<OverlayId> = self
                .overlay
                .ids()
                .filter(|&n| {
                    matches!(self.overlay.kind(n), OverlayKind::Partial)
                        && self.overlay.outputs(n).is_empty()
                })
                .collect();
            if orphans.is_empty() {
                break;
            }
            for n in orphans {
                self.remove_from_reverse(n);
                self.overlay.retire_node(n);
                retired += 1;
            }
        }
        retired
    }

    fn remove_from_reverse(&mut self, n: OverlayId) {
        let cov: Vec<u32> = self.overlay.coverage(n).to_vec();
        for w in cov {
            if let Some(list) = self.reverse.get_mut(&w) {
                list.retain(|&x| x != n);
            }
        }
    }

    /// Remove writer `w` from every coverage set and the reverse index
    /// (node deletion, §3.3).
    pub(crate) fn purge_writer_coverage(&mut self, w: u32) {
        if let Some(nodes) = self.reverse.remove(&w) {
            for n in nodes {
                self.overlay.coverage_remove(n, w);
            }
        }
    }

    /// Approximate heap footprint of overlay + reverse index (Fig 10b).
    pub fn memory_bytes(&self) -> usize {
        let rev: usize = self
            .reverse
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<OverlayId>() + 16)
            .sum();
        self.overlay.memory_bytes() + rev
    }
}

/// Build an overlay with IOB and return it plus per-iteration statistics.
pub fn build_iob(ag: &BipartiteGraph, cfg: &IobConfig) -> (Overlay, Vec<IterationStats>) {
    let started = Instant::now();
    let mut state = IobState::new(ag);
    let lists: Vec<Vec<u32>> = (0..ag.reader_count())
        .map(|i| ag.inputs(i).iter().map(|w| w.0).collect())
        .collect();
    let order = shingle_order(&lists, cfg.num_shingles, cfg.seed);

    let mut stats = Vec::new();
    let t0 = Instant::now();
    for &i in &order {
        state.add_reader(ag.reader_node(i), ag.inputs(i));
    }
    stats.push(IterationStats {
        iteration: 0,
        edges: state.overlay.edge_count(),
        sharing_index: state.overlay.sharing_index(),
        bicliques: state.overlay.partial_count(),
        benefit: ag.edge_count() as i64 - state.overlay.edge_count() as i64,
        chunk_size: 0,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        cumulative_ms: started.elapsed().as_secs_f64() * 1e3,
        memory_bytes: state.memory_bytes(),
    });

    for iter in 1..cfg.iterations {
        let t = Instant::now();
        let before = state.overlay.edge_count() as i64;
        let changed = state.refine();
        state.gc_orphans();
        stats.push(IterationStats {
            iteration: iter,
            edges: state.overlay.edge_count(),
            sharing_index: state.overlay.sharing_index(),
            bicliques: changed,
            benefit: before - state.overlay.edge_count() as i64,
            chunk_size: 0,
            elapsed_ms: t.elapsed().as_secs_f64() * 1e3,
            cumulative_ms: started.elapsed().as_secs_f64() * 1e3,
            memory_bytes: state.memory_bytes(),
        });
        if changed == 0 {
            break;
        }
    }
    (state.overlay, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_vs_bipartite;
    use eagr_agg::AggProps;
    use eagr_graph::{paper_example_graph, Neighborhood};

    fn paper_ag() -> BipartiteGraph {
        BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true)
    }

    fn sum_props() -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }

    #[test]
    fn iob_paper_example_order() {
        // Fig 4 walks readers in order e, g, f, c, d, a, b; after e and g
        // a shared aggregator over {a,b,c,d} must exist.
        let ag = paper_ag();
        let mut st = IobState::new(&ag);
        let n = |v: u32| NodeId(v);
        st.add_reader(n(4), &[n(0), n(1), n(2), n(3)]); // e_r
        st.add_reader(n(6), &[n(0), n(1), n(2), n(3), n(4), n(5)]); // g_r

        // One partial node covering {a,b,c,d} shared by e_r and g_r.
        assert_eq!(st.overlay.partial_count(), 1);
        let p = st
            .overlay
            .ids()
            .find(|&id| matches!(st.overlay.kind(id), OverlayKind::Partial))
            .unwrap();
        assert_eq!(st.overlay.coverage(p), &[0, 1, 2, 3]);
        assert_eq!(st.overlay.outputs(p).len(), 2);
        // g_r gets direct edges from e_w and f_w for the uncovered inputs.
        let gr = st.overlay.reader(n(6)).unwrap();
        assert_eq!(st.overlay.fan_in(gr), 3); // v1 + e_w + f_w
    }

    #[test]
    fn iob_compresses_and_validates() {
        let ag = paper_ag();
        let (ov, stats) = build_iob(&ag, &IobConfig::default());
        assert!(ov.sharing_index() > 0.0);
        assert!(ov.edge_count() < ag.edge_count());
        assert!(!stats.is_empty());
        validate_vs_bipartite(&ov, sum_props(), &ag).unwrap();
    }

    #[test]
    fn iob_factors_shared_block_exactly() {
        // 20 readers sharing one 10-writer block: IOB must factor the block
        // once. Direct: 200 edges; factored: 10 + 20 = 30.
        let mut lists = Vec::new();
        for r in 0..20u32 {
            let inputs: Vec<NodeId> = (0..10).map(NodeId).collect();
            lists.push((NodeId(100 + r), inputs));
        }
        let ag = BipartiteGraph::from_input_lists(200, lists);
        let (ov, _) = build_iob(&ag, &IobConfig::default());
        assert_eq!(ov.edge_count(), 30);
        assert!((ov.sharing_index() - 0.85).abs() < 1e-9);
        validate_vs_bipartite(&ov, sum_props(), &ag).unwrap();
    }

    #[test]
    fn cover_returns_disjoint_exact_cover() {
        let ag = paper_ag();
        let mut st = IobState::new(&ag);
        let targets: FastSet<u32> = [0u32, 1, 2].into_iter().collect();
        let cover = st.cover(&targets);
        let mut covered: Vec<u32> = cover
            .iter()
            .flat_map(|&n| st.overlay.coverage(n).iter().copied())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2], "exact disjoint cover");
    }

    #[test]
    fn restructuring_carves_overlap() {
        // Readers alternate between {0..6} and {0..4}: the smaller set must
        // be carved out of the bigger aggregator, never double-covered.
        let lists = vec![
            (NodeId(100), (0..6).map(NodeId).collect::<Vec<_>>()),
            (NodeId(101), (0..4).map(NodeId).collect::<Vec<_>>()),
            (NodeId(102), (0..6).map(NodeId).collect::<Vec<_>>()),
            (NodeId(103), (0..4).map(NodeId).collect::<Vec<_>>()),
        ];
        let ag = BipartiteGraph::from_input_lists(200, lists);
        let (ov, _) = build_iob(&ag, &IobConfig::default());
        validate_vs_bipartite(&ov, sum_props(), &ag).unwrap();
        assert!(ov.sharing_index() > 0.0);
    }

    #[test]
    fn gc_removes_orphan_chain() {
        let ag = paper_ag();
        let mut st = IobState::new(&ag);
        let w: Vec<OverlayId> = st.overlay.writers().map(|(id, _)| id).collect();
        let p1 = st.overlay.add_partial(&w[..2]);
        let _p2 = st.overlay.add_partial(&[p1]);
        // Neither feeds a reader: both must be collected (p2 first, then p1).
        assert_eq!(st.gc_orphans(), 2);
        assert_eq!(st.overlay.partial_count(), 0);
    }

    #[test]
    fn refine_validates_after_restructuring() {
        let mut lists = Vec::new();
        lists.push((NodeId(100), (0..8).map(NodeId).collect::<Vec<_>>()));
        lists.push((NodeId(101), (0..8).map(NodeId).collect::<Vec<_>>()));
        for r in 0..6u32 {
            lists.push((NodeId(110 + r), (0..4).map(NodeId).collect::<Vec<_>>()));
        }
        let ag = BipartiteGraph::from_input_lists(200, lists);
        let (ov, stats) = build_iob(&ag, &IobConfig::default());
        validate_vs_bipartite(&ov, sum_props(), &ag).unwrap();
        let last = stats.last().unwrap();
        assert!(last.sharing_index >= stats[0].sharing_index);
        assert!(ov.sharing_index() > 0.3);
    }

    #[test]
    fn from_overlay_rebuilds_reverse_index() {
        let ag = paper_ag();
        let (ov, _) = build_iob(&ag, &IobConfig::default());
        let st = IobState::from_overlay(ov);
        // Every partial node must be findable through each covered writer.
        let partials: Vec<OverlayId> = st
            .overlay
            .ids()
            .filter(|&n| matches!(st.overlay.kind(n), OverlayKind::Partial))
            .collect();
        for p in partials {
            for &w in st.overlay.coverage(p) {
                assert!(st.reverse[&w].contains(&p));
            }
        }
    }
}
