//! FP-tree construction and biclique mining (paper §3.2.1, Fig 3).
//!
//! The FP-tree is built over one *group* of readers (VNM's chunking keeps
//! groups small). A path `P` from the root to a node corresponds to a
//! candidate biclique between the items on `P` and the readers supporting
//! the last node; its quality is
//!
//! ```text
//! benefit(P) = L(P)·|S(P)| − L(P) − |S(P)| − penalty(P)
//! ```
//!
//! where the penalty term is `Σ_P |S'(x)|` for VNM_N's negative edges
//! (§3.2.3) and `Σ_P |S_mined(x)|` for VNM_D's reused edges (§3.2.4); both
//! are tracked here as a single per-node accumulated penalty weight.
//!
//! Mining proposes candidates; the driver in [`crate::vnm`] *validates* each
//! candidate against the live overlay before rewiring, so tree staleness can
//! only cost compression, never correctness.

use eagr_util::FastSet;

const ROOT: u32 = 0;

#[derive(Clone, Debug)]
struct FpNode {
    /// The item (overlay node id as raw u32); unused for the root.
    item: u32,
    parent: u32,
    depth: u32,
    children: Vec<u32>,
    /// Readers (group-local indices) whose insertion path includes this
    /// node — the union of the paper's `S`, `S'`, and `S_mined` memberships.
    members: Vec<u32>,
    /// Σ over members of the number of penalized items on the path up to
    /// and including this node (negative-edge or mined-edge count).
    penalty: u32,
}

/// An FP-tree over one reader group.
#[derive(Clone, Debug)]
pub struct FpTree {
    nodes: Vec<FpNode>,
}

/// A mined biclique candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Items on the path (raw overlay ids, root-side first).
    pub items: Vec<u32>,
    /// Group-local reader indices supporting the path's last node.
    pub readers: Vec<u32>,
    /// Estimated `benefit(P)`.
    pub benefit: i64,
}

impl Default for FpTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FpTree {
    /// An empty tree (just the root).
    pub fn new() -> Self {
        Self {
            nodes: vec![FpNode {
                item: u32::MAX,
                parent: u32::MAX,
                depth: 0,
                children: Vec::new(),
                members: Vec::new(),
                penalty: 0,
            }],
        }
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn child_with_item(&self, n: u32, item: u32) -> Option<u32> {
        self.nodes[n as usize]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c as usize].item == item)
    }

    fn add_child(&mut self, parent: u32, item: u32) -> u32 {
        let id = self.nodes.len() as u32;
        let depth = self.nodes[parent as usize].depth + 1;
        self.nodes.push(FpNode {
            item,
            parent,
            depth,
            children: Vec::new(),
            members: Vec::new(),
            penalty: 0,
        });
        self.nodes[parent as usize].children.push(id);
        id
    }

    #[inline]
    fn join(&mut self, node: u32, reader: u32, penalized_so_far: u32) {
        let n = &mut self.nodes[node as usize];
        n.members.push(reader);
        n.penalty += penalized_so_far;
    }

    /// Insert a reader along the longest matching prefix of `sorted_items`
    /// (the basic FP-tree insertion, §3.2.1), creating a new branch for the
    /// remainder. `is_penalized(item)` marks items whose membership carries
    /// a penalty (VNM_D's mined items); plain VNM passes `|_| false`.
    pub fn insert_path(
        &mut self,
        reader: u32,
        sorted_items: &[u32],
        mut is_penalized: impl FnMut(u32) -> bool,
    ) {
        let mut cur = ROOT;
        let mut penalized = 0u32;
        for &item in sorted_items {
            let next = match self.child_with_item(cur, item) {
                Some(c) => c,
                None => self.add_child(cur, item),
            };
            if is_penalized(item) {
                penalized += 1;
            }
            self.join(next, reader, penalized);
            cur = next;
        }
    }

    /// VNM_N insertion (§3.2.3): breadth-first explore the tree allowing up
    /// to `max_neg_per_path` path items *not* in the reader's item set
    /// (those become negative edges), add the reader along up to
    /// `max_paths` best-scoring paths, and grow a branch with the remaining
    /// items below the best path.
    ///
    /// Returns the number of paths the reader joined.
    pub fn insert_with_negatives(
        &mut self,
        reader: u32,
        item_set: &FastSet<u32>,
        sorted_items: &[u32],
        max_paths: usize,
        max_neg_per_path: usize,
    ) -> usize {
        debug_assert!(max_paths >= 1);
        // BFS accumulating (node, matched, negs); prune on negs overflow.
        // Score of stopping at a node: matched − 1 − negs, i.e. the edges
        // the reader would save if the path became a biclique feeding it.
        let mut best: Vec<(i64, u32, u32)> = Vec::new(); // (score, node, negs)
        let mut stack: Vec<(u32, u32, u32)> = vec![(ROOT, 0, 0)]; // (node, matched, negs)
        while let Some((n, matched, negs)) = stack.pop() {
            if n != ROOT {
                let score = matched as i64 - 1 - negs as i64;
                if score > 0 {
                    best.push((score, n, negs));
                }
            }
            for &c in &self.nodes[n as usize].children {
                let hit = item_set.contains(&self.nodes[c as usize].item);
                let (m2, g2) = if hit {
                    (matched + 1, negs)
                } else {
                    (matched, negs + 1)
                };
                if g2 as usize <= max_neg_per_path {
                    stack.push((c, m2, g2));
                }
            }
        }
        if best.is_empty() {
            self.insert_path(reader, sorted_items, |_| false);
            return 1;
        }
        best.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        best.truncate(max_paths);

        // Join the reader along each chosen path; on the best path, grow a
        // branch with its still-unmatched items.
        let mut paths_joined = 0;
        for (rank, &(_score, node, _negs)) in best.iter().enumerate() {
            // Walk root→node joining with running penalty.
            let path = self.path_nodes(node);
            let mut penalized = 0u32;
            for &pn in &path {
                if !item_set.contains(&self.nodes[pn as usize].item) {
                    penalized += 1;
                }
                self.join(pn, reader, penalized);
            }
            paths_joined += 1;
            if rank == 0 {
                let on_path: FastSet<u32> = path
                    .iter()
                    .map(|&pn| self.nodes[pn as usize].item)
                    .collect();
                let mut cur = node;
                for &item in sorted_items {
                    if on_path.contains(&item) {
                        continue;
                    }
                    let next = match self.child_with_item(cur, item) {
                        Some(c) => c,
                        None => self.add_child(cur, item),
                    };
                    self.join(next, reader, penalized);
                    cur = next;
                }
            }
        }
        paths_joined
    }

    /// Nodes on the path root→`node` (excluding the root, root-side first).
    fn path_nodes(&self, node: u32) -> Vec<u32> {
        let mut path = Vec::with_capacity(self.nodes[node as usize].depth as usize);
        let mut cur = node;
        while cur != ROOT {
            path.push(cur);
            cur = self.nodes[cur as usize].parent;
        }
        path.reverse();
        path
    }

    /// Items on the path root→`node`.
    pub fn path_items(&self, node: u32) -> Vec<u32> {
        self.path_nodes(node)
            .into_iter()
            .map(|n| self.nodes[n as usize].item)
            .collect()
    }

    /// The highest-benefit biclique in the tree, if any has
    /// `benefit > 0` and at least `min_support` supporting readers.
    ///
    /// Linear in the tree size (§3.2.1: "Such a biclique can be found in
    /// time linear to the size of the FP-Tree").
    pub fn best_biclique(&self, min_support: usize) -> Option<Candidate> {
        let mut best: Option<(i64, u32, u32)> = None; // (benefit, depth, node)
        for (idx, n) in self.nodes.iter().enumerate().skip(1) {
            let support = n.members.len() as i64;
            if (support as usize) < min_support {
                continue;
            }
            let depth = n.depth as i64;
            let benefit = depth * support - depth - support - n.penalty as i64;
            // Ties broken toward deeper paths: same benefit with more items
            // shared means fewer leftover direct edges elsewhere.
            if benefit > 0
                && best.is_none_or(|(b, d, _)| benefit > b || (benefit == b && n.depth > d))
            {
                best = Some((benefit, n.depth, idx as u32));
            }
        }
        best.map(|(benefit, _depth, node)| Candidate {
            items: self.path_items(node),
            readers: self.nodes[node as usize].members.clone(),
            benefit,
        })
    }

    /// All positive-benefit candidates, best first (used by tests and by
    /// diagnostics; the driver re-mines after each rewire instead).
    pub fn all_candidates(&self, min_support: usize) -> Vec<Candidate> {
        let mut all: Vec<Candidate> = self
            .nodes
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(idx, n)| {
                let support = n.members.len() as i64;
                if (support as usize) < min_support {
                    return None;
                }
                let depth = n.depth as i64;
                let benefit = depth * support - depth - support - n.penalty as i64;
                (benefit > 0).then(|| Candidate {
                    items: self.path_items(idx as u32),
                    readers: n.members.clone(),
                    benefit,
                })
            })
            .collect();
        all.sort_by_key(|c| std::cmp::Reverse(c.benefit));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> FastSet<u32> {
        items.iter().copied().collect()
    }

    /// The paper's Fig 3(a): readers a_r {d,c,e,f}, b_r {d,e,f}, e_r
    /// {d,c,a,b} (items pre-sorted in the global order d,c,e,f,a,b).
    fn paper_tree() -> FpTree {
        let mut t = FpTree::new();
        t.insert_path(0, &[3, 2, 4, 5], |_| false); // a_r: d c e f
        t.insert_path(1, &[3, 4, 5], |_| false); // b_r: d e f
        t.insert_path(2, &[3, 2, 0, 1], |_| false); // e_r: d c a b
        t
    }

    #[test]
    fn build_matches_fig3a() {
        let t = paper_tree();
        // d{a_r, b_r, e_r} at depth 1 under the root.
        let d = t.child_with_item(ROOT, 3).unwrap();
        assert_eq!(t.nodes[d as usize].members, vec![0, 1, 2]);
        // c{a_r, e_r} under d.
        let c = t.child_with_item(d, 2).unwrap();
        assert_eq!(t.nodes[c as usize].members, vec![0, 2]);
        // b_r branched at d with e{b_r}.
        let e_under_d = t.child_with_item(d, 4).unwrap();
        assert_eq!(t.nodes[e_under_d as usize].members, vec![1]);
        // e_r branched at c with a{e_r}, b{e_r}.
        let a_under_c = t.child_with_item(c, 0).unwrap();
        assert_eq!(t.nodes[a_under_c as usize].members, vec![2]);
    }

    #[test]
    fn reader_cr_extends_longest_prefix() {
        // §3.2.1: "for reader c_r, the longest prefix ... is d,c,e,f" — wait,
        // c_r's list is {d,e,f,a,b}; the paper adds it along d c e f for
        // illustration of prefix matching with its own list. We verify the
        // mechanism: inserting {d,c,e,f} extends the a_r path.
        let mut t = paper_tree();
        let before = t.len();
        t.insert_path(3, &[3, 2, 4, 5], |_| false);
        assert_eq!(t.len(), before, "full prefix match creates no nodes");
        let d = t.child_with_item(ROOT, 3).unwrap();
        let c = t.child_with_item(d, 2).unwrap();
        let e = t.child_with_item(c, 4).unwrap();
        let f = t.child_with_item(e, 5).unwrap();
        assert_eq!(t.nodes[f as usize].members, vec![0, 3]);
    }

    #[test]
    fn best_biclique_on_paper_tree() {
        let mut t = paper_tree();
        t.insert_path(3, &[3, 2, 4, 5], |_| false); // c_r–like reader
        let cand = t.best_biclique(2).unwrap();
        // Path d,c,e,f with readers {a_r, c_r}: benefit 4·2−4−2 = 2.
        assert_eq!(cand.items, vec![3, 2, 4, 5]);
        assert_eq!(cand.readers, vec![0, 3]);
        assert_eq!(cand.benefit, 2);
    }

    #[test]
    fn no_biclique_when_nothing_shared() {
        let mut t = FpTree::new();
        t.insert_path(0, &[1, 2], |_| false);
        t.insert_path(1, &[3, 4], |_| false);
        assert_eq!(t.best_biclique(2), None);
    }

    #[test]
    fn negative_insertion_fig3b() {
        // Fig 3(b): with negative edges allowed, e_r {d,c,a,b} joins the
        // path d,c,e,f using negatives at e and f... with k2 small it joins
        // shorter prefixes. We check b_r {d,e,f} can join d,c,e with one
        // negative at c.
        let mut t = FpTree::new();
        t.insert_path(0, &[3, 2, 4, 5], |_| false); // a_r
        let joined = t.insert_with_negatives(1, &set(&[3, 4, 5]), &[3, 4, 5], 2, 5);
        assert!(joined >= 1);
        // b_r should appear as a member somewhere below c (penalized path).
        let d = t.child_with_item(ROOT, 3).unwrap();
        let c = t.child_with_item(d, 2).unwrap();
        let e = t.child_with_item(c, 4).unwrap();
        assert!(t.nodes[e as usize].members.contains(&1));
        assert!(
            t.nodes[e as usize].penalty >= 1,
            "negative membership carries penalty"
        );
    }

    #[test]
    fn negative_insertion_respects_k2() {
        let mut t = FpTree::new();
        t.insert_path(0, &[1, 2, 3, 4], |_| false);
        // Reader sharing nothing: every path position needs a negative; with
        // k2 = 0 it must fall back to plain insertion (fresh branch).
        let joined = t.insert_with_negatives(1, &set(&[9]), &[9], 2, 0);
        assert_eq!(joined, 1);
        assert!(t.child_with_item(ROOT, 9).is_some(), "fresh branch created");
    }

    #[test]
    fn penalty_reduces_benefit() {
        let mut t = FpTree::new();
        t.insert_path(0, &[1, 2, 3, 4], |_| false);
        t.insert_path(1, &[1, 2, 3, 4], |_| false);
        let plain = t.best_biclique(2).unwrap().benefit;
        assert_eq!(plain, 2); // 4·2 − 4 − 2
        let mut t2 = FpTree::new();
        t2.insert_path(0, &[1, 2, 3, 4], |_| false);
        // Same membership but item 2 penalized for reader 1 (mined edge).
        t2.insert_path(1, &[1, 2, 3, 4], |it| it == 2);
        let penalized = t2.best_biclique(2).unwrap().benefit;
        assert_eq!(penalized, plain - 1);
    }

    #[test]
    fn mined_penalty_vnmd_semantics() {
        // VNM_D: reader 1's edge to item 4 was already covered elsewhere;
        // inserting with the penalty flag models S_mined. A long-enough
        // shared path still yields a positive-benefit candidate.
        let mut t = FpTree::new();
        t.insert_path(0, &[1, 2, 3, 4], |_| false);
        t.insert_path(1, &[1, 2, 3, 4], |it| it == 4);
        let cand = t.best_biclique(2).unwrap();
        assert_eq!(cand.items, vec![1, 2, 3, 4]);
        // benefit = 4·2 − 4 − 2 − 1 = 1.
        assert_eq!(cand.benefit, 1);
        // A 2-item path with a penalty is not worth mining: 2·2−2−2−1 < 0.
        let mut t2 = FpTree::new();
        t2.insert_path(0, &[1, 2], |_| false);
        t2.insert_path(1, &[1, 2], |it| it == 2);
        assert_eq!(t2.best_biclique(2), None);
    }
}
