//! Quickstart: compile the paper's running example (Fig 1) and execute it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the 7-node data graph, the query ⟨SUM, c=1, in-neighbors, all⟩,
//! a VNM_A overlay with max-flow push/pull decisions, replays the content
//! streams of Fig 1(a), and prints each node's ego-centric sum — which must
//! match Fig 1(b): a=19 b=10 c=30 d=30 e=23 f=30 g=30.

use eagr::graph::paper_example_graph;
use eagr::prelude::*;

fn main() {
    // 1. The data graph G(V, E) — Fig 1(a).
    let g = paper_example_graph();
    println!(
        "data graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    // 2. The ego-centric aggregate query ⟨F, w, N, pred⟩: SUM of the most
    //    recent value written by each in-neighbor, for every node.
    let query = EgoQuery::new(Sum)
        .window(WindowSpec::Tuple(1))
        .neighborhood(Neighborhood::In);

    // 3. Compile: bipartite graph → overlay (VNM_A) → push/pull plan
    //    (max-flow) → engine.
    let sys = EagrSystem::builder(query)
        .overlay(eagr::OverlayAlgorithm::Vnma)
        .decisions(DecisionAlgorithm::MaxFlow)
        .build(&g);
    let st = sys.stats();
    println!(
        "overlay: {} edges vs {} bipartite (sharing index {:.2}), {} partial nodes, {} push-annotated",
        st.overlay_edges, st.bipartite_edges, st.sharing_index, st.partial_nodes, st.push_nodes
    );

    // 4. Replay the content streams of Fig 1(a).
    let streams: [(&str, u32, &[i64]); 7] = [
        ("a", 0, &[1, 4]),
        ("b", 1, &[3, 7]),
        ("c", 2, &[6, 9]),
        ("d", 3, &[8, 4, 3]),
        ("e", 4, &[5, 9, 1]),
        ("f", 5, &[3, 6, 6]),
        ("g", 6, &[5]),
    ];
    let mut ts = 0;
    for (_, node, values) in streams {
        for &v in values {
            sys.write(NodeId(node), v, ts);
            ts += 1;
        }
    }

    // 5. Read every node's ego-centric aggregate.
    println!("\nego-centric SUM per node (expect 19 10 30 30 23 30 30):");
    for (name, node, _) in streams {
        println!("  {name}: {:?}", sys.read(NodeId(node)).unwrap());
    }
}
