//! Adapting dataflow decisions to workload drift (paper §4.8, Fig 13a).
//!
//! The system is planned for a write-heavy workload (readers mostly pull);
//! halfway through, attention shifts — previously cold nodes become
//! read-hot. Static decisions degrade; the adaptive controller flips the
//! push/pull frontier back to health. The example prints per-batch service
//! cost (PAO updates + pull evaluations) for static vs adaptive execution.
//!
//! ```text
//! cargo run --release --example adaptive_workload
//! ```

use eagr::gen::{shifting_trace, Event, TraceConfig};
use eagr::prelude::*;
use std::time::Instant;

fn run(label: &str, g: &DataGraph, trace: &[Event], adapt_every: Option<u64>) -> Vec<f64> {
    let n = g.id_bound();
    let sys = EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(eagr::OverlayAlgorithm::Vnma)
        .rates(eagr::gen::zipf_rates(n, 1.0, 1.0, 7))
        .build(g);
    let adaptive = sys.adaptive(adapt_every.unwrap_or(u64::MAX));
    let batch = trace.len() / 20;
    let mut per_batch = Vec::new();
    let mut ts = 0u64;
    for chunk in trace.chunks(batch) {
        let t0 = Instant::now();
        for e in chunk {
            match *e {
                Event::Write { node, value } => {
                    if adapt_every.is_some() {
                        adaptive.write(node, value, ts);
                    } else {
                        sys.write(node, value, ts);
                    }
                }
                Event::Read { node } => {
                    if adapt_every.is_some() {
                        std::hint::black_box(adaptive.read(node));
                    } else {
                        std::hint::black_box(sys.read(node));
                    }
                }
                Event::AddEdge { .. }
                | Event::RemoveEdge { .. }
                | Event::AddNode { .. }
                | Event::RemoveNode { .. } => {
                    unreachable!("generate_events emits no topology mutations")
                }
            }
            ts += 1;
        }
        per_batch.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    println!(
        "{label:<10} flips = {:<4} batch ms: {}",
        adaptive.total_flips(),
        per_batch
            .iter()
            .map(|ms| format!("{ms:.0}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    per_batch
}

fn main() {
    let n = 3_000;
    let g = eagr::gen::social_graph(n, 6, 0xADA7);
    let trace = shifting_trace(
        n,
        &TraceConfig {
            events_per_phase: 150_000,
            write_to_read: 1.0,
            shift_fraction: 0.3,
            ..Default::default()
        },
    );
    println!(
        "{} events over a {n}-node graph; read popularity shifts at the midpoint\n",
        trace.len()
    );
    let static_ms = run("static", &g, &trace, None);
    let adaptive_ms = run("adaptive", &g, &trace, Some(10_000));

    let late = |xs: &[f64]| xs[xs.len() - 5..].iter().sum::<f64>() / 5.0;
    println!(
        "\npost-shift average batch time: static {:.0} ms vs adaptive {:.0} ms",
        late(&static_ms),
        late(&adaptive_ms)
    );
}
