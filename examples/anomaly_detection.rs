//! Anomaly detection in a communication network (the paper's §1 example:
//! "higher than normal communication activity among a group of nodes").
//!
//! A *continuous* query: results must be current after every update, so the
//! system compiles to all-push over the shared overlay, and the application
//! applies a predicate on the aggregate (COUNT of calls in each node's
//! neighborhood within a time window) after each batch.
//!
//! ```text
//! cargo run --release --example anomaly_detection
//! ```

use eagr::gen::erdos_renyi;
use eagr::prelude::*;
use eagr::util::SplitMix64;

fn main() {
    // A call network: 2 000 subscribers, random trunk topology.
    let n = 2_000;
    let g = erdos_renyi(n, 8.0, 0xCA11);

    // Continuous COUNT of calls involving a node's contacts in the last
    // 60 time units.
    let query = EgoQuery::new(Count)
        .window(WindowSpec::Time(60))
        .neighborhood(Neighborhood::Undirected)
        .mode(QueryMode::Continuous);
    let sys = EagrSystem::builder(query)
        .overlay(eagr::OverlayAlgorithm::Vnma)
        .build(&g);
    let st = sys.stats();
    println!(
        "compiled continuous monitor: sharing index {:.3}, all {} nodes push-annotated: {}",
        st.sharing_index,
        sys.overlay().node_count(),
        st.push_nodes == sys.overlay().node_count()
    );

    // Baseline phase: normal call activity.
    let mut rng = SplitMix64::new(9);
    let mut ts = 0u64;
    for _ in 0..30_000 {
        let caller = NodeId(rng.index(n) as u32);
        sys.write(caller, 1, ts);
        ts += 1;
    }
    sys.advance_time(ts);

    // Collect a baseline profile of neighborhood activity.
    let mut baseline = Vec::new();
    for v in 0..n as u32 {
        if let Some(c) = sys.read(NodeId(v)) {
            baseline.push(c as f64);
        }
    }
    let mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
    let sd =
        (baseline.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / baseline.len() as f64).sqrt();
    println!("baseline neighborhood activity: mean {mean:.1}, σ {sd:.1}");

    // Attack phase: a colluding clique floods calls around node 42.
    let hot = NodeId(42);
    let suspects: Vec<NodeId> = g.out_neighbors(hot).iter().copied().take(6).collect();
    for _ in 0..400 {
        for &s in &suspects {
            sys.write(s, 1, ts);
        }
        ts += 1;
    }
    sys.advance_time(ts);

    // The continuous query keeps results current: flag nodes whose activity
    // exceeds the anomaly threshold.
    let threshold = mean + 6.0 * sd.max(1.0);
    let mut flagged: Vec<(u32, i64)> = Vec::new();
    for v in 0..n as u32 {
        if let Some(c) = sys.read(NodeId(v)) {
            if c as f64 > threshold {
                flagged.push((v, c));
            }
        }
    }
    flagged.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!(
        "\nthreshold {threshold:.0}: {} anomalous neighborhoods flagged",
        flagged.len()
    );
    for (v, c) in flagged.iter().take(8) {
        println!("  node {v}: {c} calls in its ego network");
    }
    assert!(
        flagged
            .iter()
            .any(|&(v, _)| v == hot.0 || suspects.iter().any(|s| s.0 == v)),
        "the flooded neighborhood must be flagged"
    );
    println!("\nflagged set includes the flooded neighborhood ✓");
}
