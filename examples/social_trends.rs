//! Personalized trend detection in a social network (the paper's §1
//! motivating example): every user continuously sees the TOP-K topics their
//! friends have posted about recently — a *quasi-continuous* query, so the
//! planner mixes pre-computation (hot readers) with on-demand evaluation
//! (cold readers).
//!
//! ```text
//! cargo run --release --example social_trends
//! ```

use eagr::gen::{generate_events, social_graph, zipf_rates, WorkloadConfig};
use eagr::prelude::*;
use std::time::Instant;

fn main() {
    let n = 5_000;
    println!("building a {n}-user social graph (preferential attachment)...");
    let g = social_graph(n, 8, 0xFEED);

    // Zipfian activity: a few users generate most posts and most feed loads.
    let rates = zipf_rates(n, 1.0, 1.0, 7);

    // TOP-3 topics over each user's last 5 posts per friend.
    let query = EgoQuery::new(TopK::new(3))
        .window(WindowSpec::Tuple(5))
        .neighborhood(Neighborhood::In);

    let t0 = Instant::now();
    let sys = EagrSystem::builder(query)
        .overlay(eagr::OverlayAlgorithm::Vnmn) // TOP-K is subtractable
        .rates(rates)
        .writer_window(5)
        .build(&g);
    let st = sys.stats();
    println!(
        "compiled in {:.1?}: sharing index {:.3}, {} partial aggregators, {} splits, {}/{} push nodes",
        t0.elapsed(),
        st.sharing_index,
        st.partial_nodes,
        st.splits,
        st.push_nodes,
        sys.overlay().node_count()
    );

    // Drive a mixed posting/feed-loading workload.
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 200_000,
            write_to_read: 2.0,  // twice as many posts as feed loads
            value_universe: 500, // 500 trending topics
            ..Default::default()
        },
    );
    let t1 = Instant::now();
    let report = sys.run_events(&events);
    let (posts, loads) = (report.writes, report.reads);
    let dt = t1.elapsed();
    println!(
        "replayed {posts} posts + {loads} feed loads in {:.2?} ({:.0} ops/s)",
        dt,
        throughput(posts + loads, dt)
    );

    // Show a few users' personalized trends.
    println!("\nsample personalized trends (topic, mentions among friends):");
    let mut shown = 0;
    for v in 0..n as u32 {
        if let Some(trends) = sys.read(NodeId(v)) {
            if trends.len() >= 3 {
                println!("  user {v}: {trends:?}");
                shown += 1;
                if shown == 5 {
                    break;
                }
            }
        }
    }
}
