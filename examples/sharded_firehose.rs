//! Sharded ingestion of a Zipf-skewed write firehose.
//!
//! A social graph serves a continuous SUM query while a heavily skewed
//! update stream (a few celebrity accounts produce most writes) is ingested
//! in epochs through [`EagrSystem::ingest`] under
//! `ExecutionMode::Sharded`. Per-epoch throughput is printed for the
//! sharded runtime and, for contrast, the single-threaded baseline over the
//! same stream.
//!
//! ```text
//! cargo run --release --example sharded_firehose
//! ```

use eagr::gen::{batch_events, generate_events, WorkloadConfig};
use eagr::prelude::*;
use eagr::{ExecutionMode, OverlayAlgorithm};
use std::time::Instant;

fn run(label: &str, g: &DataGraph, mode: ExecutionMode, epochs: &[eagr::gen::EventBatch]) -> f64 {
    let sys = EagrSystem::builder(EgoQuery::new(Sum).mode(QueryMode::Continuous))
        .overlay(OverlayAlgorithm::Vnma)
        .execution(mode)
        .build(g);
    let mut rates = Vec::new();
    println!("[{label}]");
    let t_all = Instant::now();
    for (i, epoch) in epochs.iter().enumerate() {
        let t0 = Instant::now();
        let report = sys.write_batch(epoch);
        let rate = epoch.len() as f64 / t0.elapsed().as_secs_f64();
        rates.push(rate);
        println!(
            "  epoch {i:>2}: {:>6} writes {:>5} reads  {rate:>10.0} ops/s",
            report.writes, report.reads
        );
    }
    let total =
        epochs.iter().map(|e| e.len()).sum::<usize>() as f64 / t_all.elapsed().as_secs_f64();
    if let Some(eng) = sys.sharded_engine() {
        println!(
            "  {} shards, {} epochs, {} cross-shard deltas",
            eng.shard_count(),
            eng.epochs(),
            eng.cross_shard_deltas()
        );
    }
    println!("  overall: {total:.0} ops/s\n");
    total
}

fn main() {
    let n = 5_000;
    let g = eagr::gen::social_graph(n, 6, 0xF14E);
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 400_000,
            write_to_read: 20.0, // firehose: writes dominate
            exponent: 1.2,       // strong Zipf skew — hot celebrity writers
            seed: 0x5EED,
            ..Default::default()
        },
    );
    let epochs = batch_events(&events, 40_000, 0);
    println!(
        "{} events ({} epochs of {}) over a {n}-node graph, Zipf(1.2) skew\n",
        events.len(),
        epochs.len(),
        40_000
    );
    let shards = std::thread::available_parallelism()
        .map(|c| c.get().clamp(2, 8))
        .unwrap_or(4);
    let single = run(
        "single-threaded",
        &g,
        ExecutionMode::SingleThreaded,
        &epochs,
    );
    let sharded = run(
        &format!("sharded x{shards}"),
        &g,
        ExecutionMode::Sharded { shards },
        &epochs,
    );
    println!(
        "sharded speedup over single-threaded: {:.2}x",
        sharded / single
    );
}
