//! A user-defined aggregate through the §2.2.3 API: an **exponential-bucket
//! histogram** that reports, per ego network, how many recent values fall in
//! each power-of-two bucket — e.g. transaction amounts in a payment graph,
//! for spotting neighborhoods with unusual large-amount activity.
//!
//! The trait contract is exactly the paper's INITIALIZE / UPDATE / FINALIZE
//! plus MERGE ("we require the ability to merge two PAOs in order to fully
//! exploit the potential for sharing"); implementing `unmerge` and declaring
//! `subtractable` lets the overlay compiler use negative edges (VNM_N).
//!
//! ```text
//! cargo run --release --example custom_aggregate
//! ```

use eagr::agg::{AggProps, Aggregate};
use eagr::gen::{erdos_renyi, generate_events, Event, WorkloadConfig};
use eagr::prelude::*;

const BUCKETS: usize = 16;

/// Count of in-window values per power-of-two magnitude bucket.
#[derive(Clone, Debug, Default, PartialEq)]
struct HistogramPao {
    counts: [i64; BUCKETS],
}

#[derive(Clone, Copy, Debug, Default)]
struct MagnitudeHistogram;

fn bucket(v: i64) -> usize {
    (64 - v.unsigned_abs().leading_zeros() as usize).min(BUCKETS - 1)
}

impl Aggregate for MagnitudeHistogram {
    type Partial = HistogramPao;
    type Output = Vec<(usize, i64)>;

    fn name(&self) -> &'static str {
        "MAGNITUDE_HISTOGRAM"
    }
    fn empty(&self) -> HistogramPao {
        HistogramPao::default()
    }
    fn insert(&self, p: &mut HistogramPao, v: i64) {
        p.counts[bucket(v)] += 1;
    }
    fn remove(&self, p: &mut HistogramPao, v: i64) {
        p.counts[bucket(v)] -= 1;
    }
    fn merge(&self, into: &mut HistogramPao, other: &HistogramPao) {
        for (a, b) in into.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
    fn unmerge(&self, into: &mut HistogramPao, other: &HistogramPao) {
        for (a, b) in into.counts.iter_mut().zip(&other.counts) {
            *a -= b;
        }
    }
    fn finalize(&self, p: &HistogramPao) -> Vec<(usize, i64)> {
        p.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }
    fn props(&self) -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true, // bucket counts form a group ⇒ negative edges OK
        }
    }
    fn push_cost(&self, _k: usize) -> f64 {
        1.5
    }
    fn pull_cost(&self, k: usize) -> f64 {
        2.0 * k as f64
    }
}

fn main() {
    // A payment network: 1 500 accounts, random transfer topology.
    let n = 1_500;
    let g = erdos_renyi(n, 10.0, 0xCAFE);

    // Per-account histogram over the last 20 transactions of each contact.
    let sys = EagrSystem::builder(
        EgoQuery::new(MagnitudeHistogram)
            .window(WindowSpec::Tuple(20))
            .neighborhood(Neighborhood::Undirected),
    )
    .overlay(eagr::OverlayAlgorithm::Vnmn) // subtractable ⇒ negative edges allowed
    .writer_window(20)
    .build(&g);
    let st = sys.stats();
    println!(
        "compiled custom aggregate: sharing index {:.3}, {} partial nodes, {} splits",
        st.sharing_index, st.partial_nodes, st.splits
    );

    // Transaction amounts are heavy-tailed: values from the Zipf topic
    // universe squared make convincing "amounts".
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 100_000,
            write_to_read: 3.0,
            value_universe: 4000,
            ..Default::default()
        },
    );
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            sys.write(node, (value + 1) * (value + 1), ts as u64);
        }
    }

    // Flag neighborhoods with activity in the top buckets.
    let mut flagged = 0;
    for v in 0..n as u32 {
        if let Some(hist) = sys.read(NodeId(v)) {
            if let Some(&(b, c)) = hist.last() {
                if b >= 14 && c >= 3 && flagged < 5 {
                    println!("  account {v}: {c} transactions in bucket 2^{b}+ — {hist:?}");
                    flagged += 1;
                }
            }
        }
    }
    println!("\nverification: results match a from-scratch evaluation…");
    let mut oracle = NaiveOracle::new(
        MagnitudeHistogram,
        WindowSpec::Tuple(20),
        Neighborhood::Undirected,
    );
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            oracle.write(node, (value + 1) * (value + 1), ts as u64);
        }
    }
    for v in (0..n as u32).step_by(37) {
        if let Some(got) = sys.read(NodeId(v)) {
            assert_eq!(got, oracle.read(&g, NodeId(v)), "account {v}");
        }
    }
    println!("✓ sampled accounts agree with the naive oracle");
}
