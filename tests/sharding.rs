//! The sharded engine runtime: partitioner determinism, cross-shard push
//! delivery, edge-cut delta reduction, inbox-routed window expiration, and
//! epoch-drain completeness under concurrent reads.

use eagr::exec::{EngineCore, RebalancePolicy, ShardedConfig, ShardedEngine};
use eagr::flow::Decisions;
use eagr::gen::{batch_events, generate_events, social_graph, Dataset, Event, WorkloadConfig};
use eagr::graph::{BipartiteGraph, PartitionStrategy, Partitioner};
use eagr::overlay::Overlay;
use eagr::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn all_push_parts(n: usize, seed: u64) -> (DataGraph, Arc<Overlay>, Decisions) {
    let g = social_graph(n, 4, seed);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let d = Decisions::all_push(&ov);
    (g, ov, d)
}

fn sharded_over(
    ov: &Arc<Overlay>,
    d: &Decisions,
    shards: usize,
    strategy: PartitionStrategy,
) -> ShardedEngine<Sum> {
    ShardedEngine::new(
        Sum,
        Arc::clone(ov),
        d,
        WindowSpec::Tuple(1),
        &ShardedConfig::builder()
            .shards(shards)
            .strategy(strategy)
            .channel_capacity(256)
            .build(),
    )
}

// ---------- partitioner determinism ----------

#[test]
fn partitioner_is_deterministic_and_total() {
    for strategy in [
        PartitionStrategy::Hash,
        PartitionStrategy::Chunk { chunk_size: 16 },
    ] {
        for shards in [1usize, 2, 4, 7] {
            let a = Partitioner::new(shards, strategy).partition(2000);
            let b = Partitioner::new(shards, strategy).partition(2000);
            assert_eq!(a, b, "{strategy:?}/{shards} must be reproducible");
            assert_eq!(a.len(), 2000);
            for i in 0..2000 {
                assert!(a.shard_of(i).idx() < shards);
                // Point lookups agree with the materialized mapping.
                assert_eq!(
                    Partitioner::new(shards, strategy).shard_of(i),
                    a.shard_of(i)
                );
            }
            assert_eq!(a.shard_sizes().iter().sum::<usize>(), 2000);
        }
    }
}

#[test]
fn engine_partition_matches_standalone_partitioner() {
    let (_, ov, d) = all_push_parts(120, 21);
    let strategy = PartitionStrategy::Chunk { chunk_size: 32 };
    let eng = sharded_over(&ov, &d, 4, strategy);
    let expect = Partitioner::new(4, strategy).partition(ov.node_count());
    assert_eq!(eng.partition(), expect);
    eng.shutdown();
}

// ---------- cross-shard push delivery ----------

#[test]
fn cross_shard_pushes_are_delivered_exactly() {
    // Writers and their push consumers land on different shards under a
    // hash partition; after drain the state must equal a single-threaded
    // replay and cross-shard traffic must actually have happened.
    let (g, ov, d) = all_push_parts(200, 22);
    let eng = sharded_over(&ov, &d, 4, PartitionStrategy::Hash);
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let events = generate_events(
        200,
        &WorkloadConfig {
            events: 5000,
            write_to_read: 1e9,
            seed: 23,
            ..Default::default()
        },
    );
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            reference.write(node, value, ts as u64);
        }
    }
    for batch in batch_events(&events, 640, 0) {
        eng.ingest(&batch).unwrap();
    }
    eng.drain().unwrap();
    assert!(
        eng.cross_shard_deltas() > 0,
        "a 4-shard hash partition of a social graph must ship cross-shard deltas"
    );
    for v in g.nodes() {
        assert_eq!(eng.read(v), reference.read(v), "node {v:?}");
    }
    eng.shutdown();
}

#[test]
fn chunk_locality_reduces_cross_shard_traffic_or_stays_correct() {
    // Chunk partitioning must stay correct; on VNM overlays (chunk-mates
    // allocated consecutively) it usually also ships fewer deltas than
    // hash. Correctness is asserted; the traffic relation is reported via
    // the counters but not asserted (it is workload-dependent).
    let g = social_graph(300, 5, 24);
    let sys = EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(eagr::OverlayAlgorithm::Vnma)
        .decisions(DecisionAlgorithm::AllPush)
        .build(&g);
    let plan = sys.plan();
    let events = generate_events(
        300,
        &WorkloadConfig {
            events: 4000,
            write_to_read: 1e9,
            seed: 25,
            ..Default::default()
        },
    );
    let mut results = Vec::new();
    for strategy in [
        PartitionStrategy::Hash,
        PartitionStrategy::Chunk { chunk_size: 64 },
        PartitionStrategy::EdgeCut,
    ] {
        let eng = ShardedEngine::new(
            Sum,
            Arc::new(plan.overlay.clone()),
            &plan.decisions,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(strategy)
                .channel_capacity(256)
                .build(),
        );
        for batch in batch_events(&events, 512, 0) {
            eng.ingest(&batch).unwrap();
        }
        eng.drain().unwrap();
        let mut reads = Vec::new();
        for v in g.nodes() {
            reads.push(eng.read(v));
        }
        results.push(reads);
        eng.shutdown();
    }
    assert_eq!(
        results[0], results[1],
        "strategy choice must never change results"
    );
    assert_eq!(
        results[0], results[2],
        "edge-cut must produce the same answers as hash"
    );
}

// ---------- edge-cut delta reduction ----------

#[test]
fn edge_cut_reduces_cross_shard_deltas_vs_hash() {
    // The fig14(d) overlay workload: a LiveJournal-like social graph,
    // direct all-push overlay, pure write firehose. The edge-cut partition
    // must counter-verifiably ship ≥ 30% fewer cross-shard deltas than the
    // structure-blind hash baseline while producing identical answers
    // (measured ~45% on this workload; 30% leaves headroom for generator
    // drift).
    let g = Dataset::LiveJournalLike.build(0.125, 0xF14D);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let d = Decisions::all_push(&ov);
    let events = generate_events(
        g.id_bound(),
        &WorkloadConfig {
            events: 12_000,
            write_to_read: 1e9,
            seed: 0xF14D,
            ..Default::default()
        },
    );
    let mut cross = Vec::new();
    let mut answers = Vec::new();
    for strategy in [PartitionStrategy::Hash, PartitionStrategy::EdgeCut] {
        let eng = sharded_over(&ov, &d, 4, strategy);
        for batch in batch_events(&events, 1024, 0) {
            eng.ingest(&batch).unwrap();
        }
        eng.drain().unwrap();
        cross.push(eng.cross_shard_deltas());
        answers.push(g.nodes().map(|v| eng.read(v)).collect::<Vec<_>>());
        // Locality changes where ops run, never how many run.
        let stats = eng.shard_stats();
        assert_eq!(
            stats.iter().map(|s| s.local_applies).sum::<u64>(),
            eng.local_applies()
        );
        eng.shutdown();
    }
    assert_eq!(answers[0], answers[1], "strategies must agree on results");
    let (hash, edge_cut) = (cross[0], cross[1]);
    assert!(
        (edge_cut as f64) <= 0.7 * hash as f64,
        "edge-cut must cut ≥30% of cross-shard deltas: hash={hash}, edge-cut={edge_cut}"
    );
}

// ---------- live rebalancing ----------

#[test]
fn rebalancing_under_rotated_hot_set_cuts_cross_deltas_vs_stale_map() {
    // The §4.8 drift scenario: a map tuned to phase-0 traffic goes stale
    // when the Zipf hot set rotates. A frozen engine keeps shipping the
    // stale map's cross-shard deltas; a RebalancePolicy-enabled engine
    // re-partitions from observed load at phase boundaries and must ship
    // ≥ 20% fewer cross-shard deltas over the rotated phases — with
    // identical answers (differential against the single-threaded
    // reference at the end).
    let g = Dataset::LiveJournalLike.build(0.125, 0xF14F);
    let n = g.id_bound();
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let d = Decisions::all_push(&ov);
    let phases = eagr::gen::rotating_hot_set(
        n,
        &WorkloadConfig {
            events: 10_000,
            write_to_read: 1e9,
            exponent: 1.2, // skewed enough that hot fan-outs dominate
            seed: 0xD21F7,
            ..Default::default()
        },
        3,
    );
    let batch = 1000;
    // Tune a map to phase-0 *observed* traffic: ingest phase 0 into a
    // throwaway engine and let one forced rebalance bake the counters into
    // the map. This is "the planning-time map" both contenders start from.
    let stale_map = {
        let tuner = sharded_over(&ov, &d, 4, PartitionStrategy::EdgeCut);
        for b in batch_events(&phases[0], batch, 0) {
            tuner.ingest_epoch(&b).unwrap();
        }
        let out = tuner.rebalance().unwrap();
        assert!(out.committed, "phase-0 tuning rebalance must commit");
        let map = tuner.partition();
        tuner.shutdown();
        map
    };
    let build = |policy: RebalancePolicy| {
        ShardedEngine::with_partition(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            stale_map.clone(),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::EdgeCut)
                .channel_capacity(256)
                .rebalance(policy)
                .build(),
        )
    };
    let frozen = build(RebalancePolicy::manual());
    // Re-tune every 2 ingestion epochs (2 000 events): the policy must
    // adapt *within* a phase — rebalancing only at phase boundaries would
    // leave the map permanently one rotation behind.
    let rebalanced = build(RebalancePolicy {
        every_epochs: 2,
        min_cut_gain: 0.01,
        max_move_fraction: 0.5,
        ..RebalancePolicy::default()
    });
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let mut ts = 0u64;
    // Rotated phases only: the contenders start on equal footing.
    let mut frozen_cross = 0u64;
    let mut rebalanced_cross = 0u64;
    for (k, phase) in phases.iter().enumerate() {
        let f0 = frozen.cross_shard_deltas();
        let r0 = rebalanced.cross_shard_deltas();
        for b in batch_events(phase, batch, ts) {
            frozen.ingest_epoch(&b).unwrap();
            rebalanced.ingest_epoch(&b).unwrap();
            for (e, t) in b.iter_timed() {
                if let Event::Write { node, value } = *e {
                    reference.write(node, value, t);
                }
            }
        }
        ts += phase.len() as u64;
        if k > 0 {
            frozen_cross += frozen.cross_shard_deltas() - f0;
            rebalanced_cross += rebalanced.cross_shard_deltas() - r0;
        }
    }
    assert!(
        rebalanced.rebalances() >= 1,
        "the every-N-epochs policy must have committed at least once"
    );
    assert!(
        rebalanced.nodes_migrated() > 0,
        "a committed rebalance migrates state"
    );
    assert!(
        (rebalanced_cross as f64) <= 0.8 * frozen_cross as f64,
        "live rebalancing must cut ≥20% of post-rotation cross-shard deltas: \
         frozen={frozen_cross}, rebalanced={rebalanced_cross}"
    );
    for v in g.nodes() {
        let want = reference.read(v);
        assert_eq!(frozen.read(v), want, "frozen node {v:?}");
        assert_eq!(rebalanced.read(v), want, "rebalanced node {v:?}");
    }
    frozen.shutdown();
    rebalanced.shutdown();
}

#[test]
fn read_batch_stays_epoch_consistent_across_live_migrations() {
    // The migration differential: a reader thread hammers epoch-consistent
    // read_batch while the main thread ingests epochs *and* rebalances
    // between them. Every observed batch must still equal the
    // single-threaded reference at some epoch boundary — a migration can
    // never tear an answer — and the final state must equal the full
    // replay.
    let (g, ov, d) = all_push_parts(100, 61);
    let eng = Arc::new(ShardedEngine::new(
        Sum,
        Arc::clone(&ov),
        &d,
        WindowSpec::Tuple(1),
        &ShardedConfig::builder()
            .shards(4)
            .strategy(PartitionStrategy::Hash)
            .channel_capacity(256)
            .rebalance(RebalancePolicy {
                min_cut_gain: 0.0,
                max_move_fraction: 1.0,
                ..RebalancePolicy::default()
            })
            .build(),
    ));
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let events = generate_events(
        100,
        &WorkloadConfig {
            events: 4000,
            write_to_read: 1e9,
            seed: 62,
            ..Default::default()
        },
    );
    let probes: Vec<NodeId> = g.nodes().collect();
    let batches = batch_events(&events, 200, 0);
    let mut boundaries: Vec<Vec<Option<i64>>> = Vec::with_capacity(batches.len() + 1);
    boundaries.push(probes.iter().map(|&v| reference.read(v)).collect());
    for b in &batches {
        for (e, ts) in b.iter_timed() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts);
            }
        }
        boundaries.push(probes.iter().map(|&v| reference.read(v)).collect());
    }
    let stop = Arc::new(AtomicBool::new(false));
    // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
    let observed = std::thread::scope(|s| {
        let reader_eng = Arc::clone(&eng);
        let reader_stop = Arc::clone(&stop);
        let reader_probes = probes.clone();
        let reader = s.spawn(move || {
            let mut seen = Vec::new();
            while !reader_stop.load(Ordering::Acquire) {
                seen.push(reader_eng.read_batch(&reader_probes).unwrap());
            }
            seen
        });
        for (i, b) in batches.iter().enumerate() {
            eng.ingest_epoch(b).unwrap();
            // Rebalance every few epochs, concurrently with the reader.
            if i % 5 == 4 {
                eng.rebalance().unwrap();
            }
        }
        stop.store(true, Ordering::Release);
        // lint: allow(panic-free, join after the stop flag — a reader panic propagates here as the test failure and no other thread is left to wedge)
        reader.join().expect("reader thread")
    });
    assert!(
        eng.rebalances() >= 1,
        "forced-threshold rebalances must commit at least once"
    );
    for (i, snap) in observed.iter().enumerate() {
        assert!(
            boundaries.contains(snap),
            "observed batch {i} matches no epoch boundary (torn by migration)"
        );
    }
    let last = eng.read_batch(&probes).unwrap();
    assert_eq!(&last, boundaries.last().unwrap(), "final state diverged");
    // Relaxed caller-thread reads agree too once everything is drained.
    for (i, &v) in probes.iter().enumerate() {
        assert_eq!(eng.read(v), last[i], "relaxed read {v:?}");
    }
    match Arc::try_unwrap(eng) {
        Ok(e) => e.shutdown(),
        Err(_) => panic!("engine still shared"),
    }
}

#[test]
fn facade_rebalance_policy_round_trip() {
    // The facade surface: a RebalancePolicy set on the builder reaches the
    // engine, EagrSystem::rebalance() works manually, and answers keep
    // matching the single-threaded facade across rebalances.
    let g = social_graph(120, 4, 63);
    let events = generate_events(
        120,
        &WorkloadConfig {
            events: 3000,
            write_to_read: 1e9,
            seed: 64,
            ..Default::default()
        },
    );
    let single = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    let sharded = EagrSystem::builder(EgoQuery::new(Sum))
        .execution(eagr::ExecutionMode::Sharded { shards: 4 })
        .rebalance(RebalancePolicy {
            min_cut_gain: 0.0,
            max_move_fraction: 1.0,
            ..RebalancePolicy::default()
        })
        .build(&g);
    assert!(single.rebalance().is_none(), "local modes have no map");
    single.ingest(&events);
    sharded.ingest(&events);
    let outcome = sharded.rebalance().expect("sharded mode rebalances");
    let eng = sharded.sharded_engine().expect("sharded runtime");
    assert_eq!(outcome.committed, eng.rebalances() == 1);
    let nodes: Vec<NodeId> = g.nodes().collect();
    assert_eq!(single.read_batch(&nodes), sharded.read_batch(&nodes));
}

// ---------- inbox-routed window expiration ----------

#[test]
fn advance_time_runs_concurrently_with_sharded_ingest() {
    // Expirations travel through the shard inboxes, so a sweeper thread
    // may fire advance_time while batches are in flight without touching
    // shard-owned state. The final state (everything drained, clock at
    // T) must equal the sequential replay no matter how sweeps and writes
    // interleaved: expiration is a monotonic filter on timestamps.
    let g = social_graph(120, 4, 33);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let d = Decisions::all_push(&ov);
    let window = WindowSpec::Time(64);
    let eng = Arc::new(ShardedEngine::new(
        Sum,
        Arc::clone(&ov),
        &d,
        window,
        &ShardedConfig::builder()
            .shards(4)
            .strategy(PartitionStrategy::EdgeCut)
            .channel_capacity(256)
            .build(),
    ));
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, window);
    let events = generate_events(
        120,
        &WorkloadConfig {
            events: 6000,
            write_to_read: 1e9,
            seed: 34,
            ..Default::default()
        },
    );
    let final_ts = events.len() as u64;
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            reference.write(node, value, ts as u64);
        }
    }
    reference.advance_time(final_ts);
    let stop = Arc::new(AtomicBool::new(false));
    // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
    std::thread::scope(|s| {
        let sweeper = Arc::clone(&eng);
        let stop_flag = Arc::clone(&stop);
        s.spawn(move || {
            let mut ts = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                sweeper.advance_time(ts.min(final_ts)).unwrap();
                ts += 97;
                std::thread::yield_now();
            }
        });
        for batch in batch_events(&events, 300, 0) {
            eng.ingest(&batch).unwrap();
        }
        stop.store(true, Ordering::Release);
    });
    eng.advance_time_epoch(final_ts).unwrap();
    for v in g.nodes() {
        assert_eq!(eng.read(v), reference.read(v), "node {v:?} after sweeps");
    }
    match Arc::try_unwrap(eng) {
        Ok(e) => e.shutdown(),
        Err(_) => panic!("engine still shared"),
    }
}

// ---------- shard-executed reads during ingestion ----------

#[test]
fn read_batch_is_epoch_consistent_under_concurrent_ingest() {
    // A reader thread hammers read_batch while the main thread ingests
    // epochs. The epoch-stamped snapshot rule says every batch must observe
    // exactly the state after some whole number of ingested epochs — never
    // a torn epoch. We precompute the single-threaded reference answers at
    // every epoch boundary and require each observed batch to equal one of
    // them (and the final batch to equal the last boundary).
    let (g, ov, d) = all_push_parts(100, 51);
    let eng = Arc::new(sharded_over(&ov, &d, 4, PartitionStrategy::Hash));
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let events = generate_events(
        100,
        &WorkloadConfig {
            events: 4000,
            write_to_read: 1e9,
            seed: 52,
            ..Default::default()
        },
    );
    let probes: Vec<NodeId> = g.nodes().collect();
    let batches = batch_events(&events, 200, 0);
    // Reference answers after 0, 1, …, K epochs.
    let mut boundaries: Vec<Vec<Option<i64>>> = Vec::with_capacity(batches.len() + 1);
    boundaries.push(probes.iter().map(|&v| reference.read(v)).collect());
    for b in &batches {
        for (e, ts) in b.iter_timed() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts);
            }
        }
        boundaries.push(probes.iter().map(|&v| reference.read(v)).collect());
    }
    let stop = Arc::new(AtomicBool::new(false));
    // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
    let observed = std::thread::scope(|s| {
        let reader_eng = Arc::clone(&eng);
        let reader_stop = Arc::clone(&stop);
        let reader_probes = probes.clone();
        let reader = s.spawn(move || {
            let mut seen = Vec::new();
            while !reader_stop.load(Ordering::Acquire) {
                seen.push(reader_eng.read_batch(&reader_probes).unwrap());
            }
            seen
        });
        for b in &batches {
            eng.ingest_epoch(b).unwrap();
        }
        stop.store(true, Ordering::Release);
        // lint: allow(panic-free, join after the stop flag — a reader panic propagates here as the test failure and no other thread is left to wedge)
        reader.join().expect("reader thread")
    });
    assert!(
        !observed.is_empty(),
        "reader thread never completed a batch"
    );
    for (i, snap) in observed.iter().enumerate() {
        assert!(
            boundaries.contains(snap),
            "observed batch {i} matches no epoch boundary (torn epoch)"
        );
    }
    // After everything drained, the service answers the final boundary.
    let last = eng.read_batch(&probes).unwrap();
    assert_eq!(&last, boundaries.last().unwrap(), "final state diverged");
    assert!(eng.reads_served() > 0);
    match Arc::try_unwrap(eng) {
        Ok(e) => e.shutdown(),
        Err(_) => panic!("engine still shared"),
    }
}

#[test]
fn facade_read_batch_routes_to_shard_workers() {
    // EagrSystem in sharded mode must shard-execute both read_batch and
    // point reads (the read counters prove the workers did the work), and
    // the answers must match the single-threaded facade on the same
    // stream.
    let g = social_graph(90, 4, 53);
    let events = generate_events(
        90,
        &WorkloadConfig {
            events: 2500,
            write_to_read: 3.0,
            seed: 54,
            ..Default::default()
        },
    );
    let single = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    let sharded = EagrSystem::builder(EgoQuery::new(Sum))
        .execution(eagr::ExecutionMode::Sharded { shards: 4 })
        .build(&g);
    assert_eq!(single.ingest(&events), sharded.ingest(&events));
    let eng = sharded.sharded_engine().expect("sharded runtime");
    let after_ingest = eng.reads_served();
    assert!(
        after_ingest > 0,
        "read events inside mixed batches must be shard-executed"
    );
    let nodes: Vec<NodeId> = g.nodes().collect();
    assert_eq!(single.read_batch(&nodes), sharded.read_batch(&nodes));
    assert!(
        eng.reads_served() > after_ingest,
        "read_batch must be served by the workers"
    );
}

// ---------- epoch-drain completeness under concurrent reads ----------

#[test]
fn drain_completes_while_readers_hammer_the_engine() {
    let (g, ov, d) = all_push_parts(150, 26);
    let eng = Arc::new(sharded_over(&ov, &d, 4, PartitionStrategy::Hash));
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let events = generate_events(
        150,
        &WorkloadConfig {
            events: 6000,
            write_to_read: 1e9,
            seed: 27,
            ..Default::default()
        },
    );
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            reference.write(node, value, ts as u64);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
    std::thread::scope(|s| {
        // Concurrent readers: results mid-epoch are relaxed (may be
        // partial) but must never deadlock or crash, and drain() must
        // still terminate while they run.
        for t in 0..3u32 {
            let eng = Arc::clone(&eng);
            let stop = Arc::clone(&stop);
            let nodes: Vec<NodeId> = g.nodes().collect();
            s.spawn(move || {
                let mut i = t as usize;
                while !stop.load(Ordering::Acquire) {
                    std::hint::black_box(eng.read(nodes[i % nodes.len()]));
                    i += 1;
                }
            });
        }
        for batch in batch_events(&events, 500, 0) {
            eng.ingest_epoch(&batch).unwrap(); // drain inside the epoch loop
        }
        stop.store(true, Ordering::Release);
    });
    // After the final drain every write is fully propagated: the state
    // equals the sequential reference.
    for v in g.nodes() {
        assert_eq!(eng.read(v), reference.read(v), "node {v:?}");
    }
    match Arc::try_unwrap(eng) {
        Ok(e) => e.shutdown(),
        Err(_) => panic!("engine still shared"),
    }
}

#[test]
fn interleaved_reads_and_writes_through_the_facade() {
    // Mixed batches through EagrSystem in sharded mode: reads inside a
    // batch run inline and tolerate in-flight writes; each write_batch
    // call is a full epoch so the next batch observes everything prior.
    let g = social_graph(100, 4, 28);
    let sys = EagrSystem::builder(EgoQuery::new(Count))
        .decisions(DecisionAlgorithm::AllPush)
        .execution(eagr::ExecutionMode::Sharded { shards: 3 })
        .build(&g);
    let events = generate_events(
        100,
        &WorkloadConfig {
            events: 3000,
            write_to_read: 2.0,
            seed: 29,
            ..Default::default()
        },
    );
    let mut writes = 0;
    let mut reads = 0;
    for batch in batch_events(&events, 256, 0) {
        let report = sys.write_batch(&batch);
        writes += report.writes;
        reads += report.reads;
    }
    assert_eq!(reads, events.iter().filter(|e| !e.is_write()).count());
    assert!(writes > 0);
    // Post-drain answers equal the oracle.
    let mut oracle = NaiveOracle::new(Count, WindowSpec::Tuple(1), Neighborhood::In);
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            oracle.write(node, value, ts as u64);
        }
    }
    for v in g.nodes() {
        if let Some(got) = sys.read(v) {
            assert_eq!(got, oracle.read(&g, v), "node {v:?}");
        }
    }
}

// ---------- two-phase migration: compaction and coalescing ----------

#[test]
fn compaction_reclaims_orphans_with_relaxed_readers_racing_the_flip() {
    // Satellite 3a: migrations orphan slab slots; compaction must return
    // `orphaned_pao_slots` to 0 while relaxed caller-thread readers race
    // both the flips and the repack. Readers revalidate slot locations, so
    // no read may tear or panic, and the drained end state must equal the
    // single-threaded reference.
    let (g, ov, d) = all_push_parts(100, 71);
    let eng = Arc::new(ShardedEngine::new(
        Sum,
        Arc::clone(&ov),
        &d,
        WindowSpec::Tuple(1),
        &ShardedConfig::builder()
            .shards(4)
            .strategy(PartitionStrategy::Hash)
            .channel_capacity(256)
            .rebalance(RebalancePolicy {
                min_cut_gain: 0.0,
                max_move_fraction: 1.0,
                ..RebalancePolicy::default()
            })
            .build(),
    ));
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let events = generate_events(
        100,
        &WorkloadConfig {
            events: 4000,
            write_to_read: 1e9,
            seed: 72,
            ..Default::default()
        },
    );
    let probes: Vec<NodeId> = g.nodes().collect();
    let stop = Arc::new(AtomicBool::new(false));
    // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
    std::thread::scope(|s| {
        for t in 0..2 {
            let reader_eng = Arc::clone(&eng);
            let reader_stop = Arc::clone(&stop);
            let reader_probes = probes.clone();
            s.spawn(move || {
                while !reader_stop.load(Ordering::Acquire) {
                    for &v in reader_probes.iter().skip(t) {
                        // Relaxed read: any epoch- or mid-epoch state is
                        // admissible; the point is it never tears.
                        let _ = reader_eng.read(v);
                    }
                }
            });
        }
        let mut compacted = 0u64;
        for (i, b) in batch_events(&events, 200, 0).iter().enumerate() {
            eng.ingest_epoch(b).unwrap();
            for (e, ts) in b.iter_timed() {
                if let Event::Write { node, value } = *e {
                    reference.write(node, value, ts);
                }
            }
            if i % 4 == 3 {
                eng.rebalance().unwrap();
            }
            if i % 8 == 7 {
                compacted += eng.compact().unwrap();
            }
        }
        assert!(eng.rebalances() >= 1, "forced rebalances must commit");
        assert!(compacted > 0, "migrations must have orphaned slots");
        let tail = eng.compact().unwrap();
        assert_eq!(
            eng.orphaned_pao_slots(),
            0,
            "compaction reclaims every orphan"
        );
        assert_eq!(eng.slots_reclaimed(), compacted + tail);
        stop.store(true, Ordering::Release);
    });
    eng.drain().unwrap();
    for v in g.nodes() {
        assert_eq!(eng.read(v), reference.read(v), "node {v:?}");
    }
    match Arc::try_unwrap(eng) {
        Ok(e) => e.shutdown(),
        Err(_) => panic!("engine still shared"),
    }
}

#[test]
fn concurrent_auto_rebalance_triggers_coalesce_not_stack() {
    // Satellite 6 regression: with every_epochs=1, two ingester threads
    // fire the auto-rebalance trigger concurrently. Triggers landing while
    // another migration is in flight must coalesce (single-flight CAS) —
    // never stack a second drain or overlap two copies — and the drained
    // state must still equal the single-threaded reference.
    let (g, ov, d) = all_push_parts(100, 81);
    let eng = Arc::new(ShardedEngine::new(
        Sum,
        Arc::clone(&ov),
        &d,
        WindowSpec::Tuple(1),
        &ShardedConfig::builder()
            .shards(4)
            .strategy(PartitionStrategy::Hash)
            .channel_capacity(256)
            .rebalance(RebalancePolicy {
                every_epochs: 1,
                min_cut_gain: 0.0,
                max_move_fraction: 1.0,
                ..RebalancePolicy::default()
            })
            .build(),
    ));
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let events = generate_events(
        100,
        &WorkloadConfig {
            events: 6000,
            write_to_read: 1e9,
            seed: 82,
            ..Default::default()
        },
    );
    // Disjoint writer sets per thread keep per-writer op order (and thus
    // the final tuple-window state) deterministic under 2-thread ingest.
    let halves: Vec<Vec<eagr::gen::Event>> = (0..2)
        .map(|t| {
            events
                .iter()
                .filter(|e| match e {
                    Event::Write { node, .. } => node.0 as usize % 2 == t,
                    Event::Read { .. }
                    | Event::AddEdge { .. }
                    | Event::RemoveEdge { .. }
                    | Event::AddNode { .. }
                    | Event::RemoveNode { .. } => false,
                })
                .cloned()
                .collect()
        })
        .collect();
    let mut batch_count = 0usize;
    // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
    std::thread::scope(|s| {
        for (t, half) in halves.iter().enumerate() {
            batch_count += half.len().div_ceil(100);
            let eng = Arc::clone(&eng);
            s.spawn(move || {
                for b in batch_events(half, 100, (t as u64) << 32) {
                    // every_epochs=1: this triggers a rebalance attempt on
                    // the ingesting thread after every single batch.
                    eng.ingest_epoch(&b).unwrap();
                }
            });
        }
    });
    for (t, half) in halves.iter().enumerate() {
        for b in batch_events(half, 100, (t as u64) << 32) {
            for (e, ts) in b.iter_timed() {
                if let Event::Write { node, value } = *e {
                    reference.write(node, value, ts);
                }
            }
        }
    }
    eng.drain().unwrap();
    // Conservation: every trigger either ran to completion (committed or
    // not) or coalesced against an in-flight migration — and commits can
    // never exceed the number of triggers fired.
    assert!(eng.rebalances() >= 1, "forced policy must commit");
    assert!(
        eng.rebalances() + eng.coalesced_rebalances() <= batch_count as u64,
        "more outcomes ({} commits + {} coalesced) than triggers ({batch_count})",
        eng.rebalances(),
        eng.coalesced_rebalances(),
    );
    for v in g.nodes() {
        assert_eq!(eng.read(v), reference.read(v), "node {v:?}");
    }
    match Arc::try_unwrap(eng) {
        Ok(e) => e.shutdown(),
        Err(_) => panic!("engine still shared"),
    }
}

#[test]
fn facade_surfaces_migration_and_compaction_counters() {
    // MigrationReport flows out of EagrSystem::rebalance(), the registry
    // rolls migration/compaction counters across sharded strata, and
    // EagrSystem::compact() reclaims what migrations orphaned.
    let g = social_graph(120, 4, 91);
    let events = generate_events(
        120,
        &WorkloadConfig {
            events: 3000,
            write_to_read: 1e9,
            seed: 92,
            ..Default::default()
        },
    );
    let sys = EagrSystem::builder(EgoQuery::new(Sum))
        .execution(eagr::ExecutionMode::Sharded { shards: 4 })
        .rebalance(RebalancePolicy {
            min_cut_gain: 0.0,
            max_move_fraction: 1.0,
            ..RebalancePolicy::default()
        })
        .build(&g);
    sys.ingest(&events);
    let report = sys.rebalance().expect("sharded mode rebalances");
    assert!(report.committed);
    assert_eq!(report.fence_epochs, 1);
    let stats = sys.registry_stats();
    assert_eq!(stats.rebalances, 1);
    assert_eq!(stats.nodes_migrated, report.nodes_copied as u64);
    assert_eq!(stats.orphaned_pao_slots, report.nodes_copied as u64);
    assert_eq!(stats.slots_reclaimed, 0);
    let reclaimed = sys.compact().expect("sharded mode compacts");
    assert_eq!(reclaimed, report.nodes_copied as u64);
    let after = sys.registry_stats();
    assert_eq!(after.orphaned_pao_slots, 0);
    assert_eq!(after.slots_reclaimed, reclaimed);
    // Local modes have neither a map nor slabs.
    let local = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    assert!(local.rebalance().is_none());
    assert!(local.compact().is_none());
}
