//! Multi-threaded execution (§2.2.2): the two-pool engine must converge to
//! the single-threaded result after drain, under every decision policy and
//! from many submitter threads; the adaptive engine must stay correct while
//! flipping decisions mid-stream.

use eagr::exec::{EngineCore, ParallelConfig, ParallelEngine};

use eagr::gen::{generate_events, social_graph, Event, WorkloadConfig};
use eagr::prelude::*;
use eagr::OverlayAlgorithm;
use std::sync::Arc;

fn build_core(n: usize, seed: u64, all_push: bool) -> (DataGraph, Arc<EngineCore<Sum>>) {
    let g = social_graph(n, 4, seed);
    let sys = EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(OverlayAlgorithm::Vnma)
        .decisions(if all_push {
            DecisionAlgorithm::AllPush
        } else {
            DecisionAlgorithm::MaxFlow
        })
        .build(&g);
    (g, sys.core())
}

#[test]
fn parallel_converges_to_sequential_all_push() {
    let n = 150;
    let (g, core) = build_core(n, 1, true);
    let (_, seq_core) = {
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(OverlayAlgorithm::Vnma)
            .decisions(DecisionAlgorithm::AllPush)
            .build(&g);
        (0, sys.core())
    };
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 8000,
            write_to_read: 1e9, // effectively all writes
            seed: 2,
            ..Default::default()
        },
    );
    let eng = ParallelEngine::new(
        core,
        ParallelConfig {
            write_threads: 4,
            read_threads: 2,
        },
    );
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            eng.submit_write(node, value, ts as u64);
            seq_core.write(node, value, ts as u64);
        }
    }
    eng.drain();
    for v in g.nodes() {
        assert_eq!(eng.read_blocking(v), seq_core.read(v), "node {v:?}");
    }
    eng.shutdown();
}

#[test]
fn parallel_with_mixed_plan_and_interleaved_reads() {
    let n = 120;
    let (g, core) = build_core(n, 3, false);
    let eng = ParallelEngine::new(core, ParallelConfig::default());
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 6000,
            write_to_read: 2.0,
            seed: 4,
            ..Default::default()
        },
    );
    for (ts, e) in events.iter().enumerate() {
        match *e {
            Event::Write { node, value } => eng.submit_write(node, value, ts as u64),
            Event::Read { node } => eng.submit_read(node),
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {
                unreachable!("generate_events emits no topology mutations")
            }
        }
    }
    eng.drain();
    // After drain, compare against a naive oracle over the same writes.
    let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            oracle.write(node, value, ts as u64);
        }
    }
    for v in g.nodes() {
        if let Some(got) = eng.read_blocking(v) {
            assert_eq!(got, oracle.read(&g, v), "node {v:?}");
        }
    }
    eng.shutdown();
}

#[test]
fn many_submitters() {
    let n = 100;
    let (g, core) = build_core(n, 5, true);
    let eng = Arc::new(ParallelEngine::new(
        core,
        ParallelConfig {
            write_threads: 3,
            read_threads: 3,
        },
    ));
    // Each submitter writes to a disjoint node range so per-writer order is
    // preserved regardless of submitter interleaving.
    std::thread::scope(|s| {
        for t in 0..4usize {
            let eng = Arc::clone(&eng);
            s.spawn(move || {
                for i in 0..1000u64 {
                    let node = NodeId((t * 25 + (i as usize % 25)) as u32);
                    eng.submit_write(node, (t as i64) * 1000 + i as i64, i);
                }
            });
        }
    });
    eng.drain();
    // Compare with a sequential replay (same per-node final values:
    // node t*25+j last receives i = 975+j from thread t).
    let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
    for t in 0..4usize {
        for i in 0..1000u64 {
            let node = NodeId((t * 25 + (i as usize % 25)) as u32);
            oracle.write(node, (t as i64) * 1000 + i as i64, i);
        }
    }
    for v in g.nodes() {
        if let Some(got) = eng.read_blocking(v) {
            assert_eq!(got, oracle.read(&g, v), "node {v:?}");
        }
    }
    match Arc::try_unwrap(eng) {
        Ok(e) => e.shutdown(),
        Err(_) => panic!("engine still shared"),
    }
}

#[test]
fn topk_parallel_consistency() {
    let n = 80;
    let g = social_graph(n, 4, 7);
    let sys = EagrSystem::builder(EgoQuery::new(TopK::new(3)))
        .overlay(OverlayAlgorithm::Vnmn)
        .decisions(DecisionAlgorithm::AllPush)
        .build(&g);
    let eng = sys.parallel(ParallelConfig {
        write_threads: 4,
        read_threads: 1,
    });
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 5000,
            write_to_read: 1e9,
            seed: 8,
            ..Default::default()
        },
    );
    let mut oracle = NaiveOracle::new(TopK::new(3), WindowSpec::Tuple(1), Neighborhood::In);
    for (ts, e) in events.iter().enumerate() {
        if let Event::Write { node, value } = *e {
            eng.submit_write(node, value, ts as u64);
            oracle.write(node, value, ts as u64);
        }
    }
    eng.drain();
    for v in g.nodes() {
        if let Some(got) = eng.read_blocking(v) {
            assert_eq!(got, oracle.read(&g, v), "node {v:?}");
        }
    }
    eng.shutdown();
}

#[test]
fn adaptive_engine_correct_through_workload_shift() {
    let n = 100;
    let g = social_graph(n, 4, 9);
    let sys = EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(OverlayAlgorithm::Vnma)
        .rates(Rates::uniform(n, 10.0)) // planned for write-heavy
        .build(&g);
    let adaptive = sys.adaptive(500);
    let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
    // Phase 1: write-heavy. Phase 2: read-heavy (decisions should flip).
    let mut ts = 0u64;
    for phase in 0..2 {
        let cfg = WorkloadConfig {
            events: 4000,
            write_to_read: if phase == 0 { 10.0 } else { 0.05 },
            seed: 10 + phase,
            ..Default::default()
        };
        for e in generate_events(n, &cfg) {
            match e {
                Event::Write { node, value } => {
                    adaptive.write(node, value, ts);
                    oracle.write(node, value, ts);
                }
                Event::Read { node } => {
                    if let Some(got) = adaptive.read(node) {
                        assert_eq!(got, oracle.read(&g, node), "ts {ts}");
                    }
                }
                Event::AddEdge { .. }
                | Event::RemoveEdge { .. }
                | Event::AddNode { .. }
                | Event::RemoveNode { .. } => {
                    unreachable!("generate_events emits no topology mutations")
                }
            }
            ts += 1;
        }
    }
    assert!(adaptive.total_flips() > 0, "shift must trigger adaptation");
}

/// The runtime half of the lock-order rail (vendored `parking_lot`'s
/// debug-build held-lock tracker): an AB-BA acquisition pattern that would
/// classically *deadlock* two threads instead panics at the inverted call
/// site, naming both locks — the failure is loud, attributable, and
/// CI-visible rather than a hung test job.
#[test]
#[cfg_attr(
    not(debug_assertions),
    ignore = "the lock-order tracker is compiled out in release builds"
)]
fn lock_order_inversion_fails_loudly_instead_of_deadlocking() {
    use parking_lot::{lock_order, RwLock};

    let registry = Arc::new(RwLock::named(0u32, "registry"));
    let graph = Arc::new(RwLock::named(0u32, "graph"));

    // Declared order: a thread may take `registry` then `graph`.
    {
        let _r = registry.read();
        let _g = graph.read();
        assert_eq!(lock_order::held_names(), vec!["registry", "graph"]);
    }
    assert!(lock_order::held_names().is_empty());

    // The inverting thread (graph → registry) must panic before blocking,
    // even with the other half of the classic deadlock running.
    let (r2, g2) = (Arc::clone(&registry), Arc::clone(&graph));
    let inverted = std::thread::spawn(move || {
        let _g = g2.write();
        // lint: allow(lock-order, deliberate AB-BA inversion — this test asserts the tracker panics before the deadlock can form)
        let _r = r2.read();
    });
    let err = inverted
        .join()
        .expect_err("inversion must panic, not deadlock");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("lock-order violation") && msg.contains("`registry`"),
        "panic must name the violation and the lock: {msg}"
    );
}
