//! Property-based tests (proptest) of the core invariants:
//!
//! * PAO algebra laws for every built-in aggregate,
//! * window-buffer ↔ delta-op consistency,
//! * overlay construction preserves net contribution on arbitrary bipartite
//!   graphs,
//! * min-cut decisions valid + optimal vs brute force on arbitrary DAGs,
//! * engine ≡ oracle on arbitrary event interleavings.

use eagr::agg::{Aggregate, Count, Distinct, Max, Min, Sum, TopK, WindowBuffer, WindowSpec};
use eagr::exec::{Engine, EngineCore, RebalancePolicy, ShardedConfig, ShardedEngine};
use eagr::flow::{decide_maxflow, node_costs, propagate_frequencies, Decisions, Rates};
use eagr::gen::{batch_events, Event};
use eagr::graph::{BipartiteGraph, DataGraph, Neighborhood, NodeId, PartitionStrategy};
use eagr::overlay::{build_iob, build_vnm, validate_vs_bipartite, IobConfig, Overlay, VnmConfig};
use eagr::prelude::*;
use eagr::{EagrSystem, NaiveOracle, OverlayAlgorithm};
use proptest::prelude::*;
use std::sync::Arc;

// ---------- aggregate algebra ----------

/// Model-check one aggregate: any interleaving of inserts and removes
/// (removes only of present values) must finalize like the multiset model.
fn check_against_multiset<A: Aggregate>(
    agg: &A,
    ops: &[(bool, i64)],
    model_finalize: impl Fn(&[i64]) -> A::Output,
) {
    let mut p = agg.empty();
    let mut model: Vec<i64> = Vec::new();
    for &(insert, v) in ops {
        if insert {
            agg.insert(&mut p, v);
            model.push(v);
        } else if let Some(pos) = model.iter().position(|&x| x == v) {
            agg.remove(&mut p, v);
            model.remove(pos);
        }
    }
    assert_eq!(agg.finalize(&p), model_finalize(&model));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sum_matches_multiset_model(ops in proptest::collection::vec((any::<bool>(), -100i64..100), 0..200)) {
        check_against_multiset(&Sum, &ops, |m| m.iter().sum());
    }

    #[test]
    fn count_matches_multiset_model(ops in proptest::collection::vec((any::<bool>(), -100i64..100), 0..200)) {
        check_against_multiset(&Count, &ops, |m| m.len() as i64);
    }

    #[test]
    fn max_min_match_multiset_model(ops in proptest::collection::vec((any::<bool>(), -50i64..50), 0..200)) {
        check_against_multiset(&Max, &ops, |m| m.iter().copied().max());
        check_against_multiset(&Min, &ops, |m| m.iter().copied().min());
    }

    #[test]
    fn distinct_matches_multiset_model(ops in proptest::collection::vec((any::<bool>(), 0i64..20), 0..200)) {
        check_against_multiset(&Distinct, &ops, |m| {
            let mut s: Vec<i64> = m.to_vec();
            s.sort_unstable();
            s.dedup();
            s.len()
        });
    }

    #[test]
    fn topk_matches_multiset_model(ops in proptest::collection::vec((any::<bool>(), 0i64..10), 0..200)) {
        check_against_multiset(&TopK::new(3), &ops, |m| {
            let mut freq = std::collections::HashMap::new();
            for &v in m {
                *freq.entry(v).or_insert(0i64) += 1;
            }
            let mut items: Vec<(i64, i64)> = freq.into_iter().collect();
            items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            items.truncate(3);
            items
        });
    }

    #[test]
    fn merge_is_commutative_and_unmerge_inverts(
        xs in proptest::collection::vec(-50i64..50, 0..50),
        ys in proptest::collection::vec(-50i64..50, 0..50),
    ) {
        let agg = TopK::new(5);
        let mut a = agg.empty();
        let mut b = agg.empty();
        for &x in &xs { agg.insert(&mut a, x); }
        for &y in &ys { agg.insert(&mut b, y); }
        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        agg.merge(&mut ab, &b);
        let mut ba = b.clone();
        agg.merge(&mut ba, &a);
        prop_assert_eq!(agg.finalize(&ab), agg.finalize(&ba));
        // (a ⊕ b) ⊖ b == a
        agg.unmerge(&mut ab, &b);
        prop_assert_eq!(agg.finalize(&ab), agg.finalize(&a));
    }

    // ---------- windows ----------

    #[test]
    fn tuple_window_inserts_minus_removes_equals_contents(
        values in proptest::collection::vec(-100i64..100, 1..100),
        c in 1usize..8,
    ) {
        let mut w = WindowBuffer::new(WindowSpec::Tuple(c));
        let mut live: Vec<i64> = Vec::new();
        for (ts, &v) in values.iter().enumerate() {
            let mut expired = Vec::new();
            w.push(ts as u64, v, &mut expired);
            live.push(v);
            for e in expired {
                let pos = live.iter().position(|&x| x == e).expect("expired value was live");
                live.remove(pos);
            }
            prop_assert_eq!(w.len(), live.len());
            prop_assert!(w.len() <= c);
        }
        let contents: Vec<i64> = w.values().collect();
        let tail: Vec<i64> = values[values.len().saturating_sub(c)..].to_vec();
        prop_assert_eq!(contents, tail);
    }

    #[test]
    fn time_window_never_holds_stale_values(
        steps in proptest::collection::vec((0u64..5, -10i64..10), 1..80),
        horizon in 1u64..20,
    ) {
        let mut w = WindowBuffer::new(WindowSpec::Time(horizon));
        let mut now = 0u64;
        let mut sink = Vec::new();
        for &(dt, v) in &steps {
            now += dt;
            w.push(now, v, &mut sink);
        }
        // All retained timestamps are within the horizon.
        prop_assert!(!w.is_empty()); // the newest value always survives
        let newest_cutoff = now.checked_sub(horizon);
        if let Some(cut) = newest_cutoff {
            let _ = cut;
        }
    }

    // ---------- overlay construction ----------

    #[test]
    fn vnm_and_iob_preserve_contribution_on_random_bipartite(
        seed in 0u64..1000,
        readers in 3usize..12,
        writers in 3usize..10,
        density in 0.2f64..0.9,
    ) {
        let mut rng = eagr::util::SplitMix64::new(seed);
        let mut lists = Vec::new();
        for r in 0..readers {
            let mut inputs = Vec::new();
            for w in 0..writers {
                if rng.chance(density) {
                    inputs.push(NodeId(w as u32));
                }
            }
            if inputs.is_empty() {
                inputs.push(NodeId(rng.index(writers) as u32));
            }
            lists.push((NodeId((100 + r) as u32), inputs));
        }
        let ag = BipartiteGraph::from_input_lists(120, lists);
        let subtractable = eagr::agg::AggProps { duplicate_insensitive: false, subtractable: true };
        let dup_ok = eagr::agg::AggProps { duplicate_insensitive: true, subtractable: false };

        let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(subtractable));
        prop_assert!(validate_vs_bipartite(&ov, subtractable, &ag).is_ok());

        let (ovn, _) = build_vnm(&ag, &VnmConfig::vnmn(subtractable));
        prop_assert!(validate_vs_bipartite(&ovn, subtractable, &ag).is_ok());

        let (ovd, _) = build_vnm(&ag, &VnmConfig::vnmd(dup_ok));
        prop_assert!(validate_vs_bipartite(&ovd, dup_ok, &ag).is_ok());

        let (ovi, _) = build_iob(&ag, &IobConfig::default());
        prop_assert!(validate_vs_bipartite(&ovi, subtractable, &ag).is_ok());

        // Sharing index never negative, never ≥ 1.
        for o in [&ov, &ovn, &ovd, &ovi] {
            prop_assert!(o.sharing_index() >= -1e-9 && o.sharing_index() < 1.0);
        }
    }

    // ---------- dataflow decisions ----------

    #[test]
    fn maxflow_decisions_always_valid(
        seed in 0u64..500,
        ratio in 0.05f64..20.0,
    ) {
        let g = eagr::gen::social_graph(40, 3, seed);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let props = eagr::agg::AggProps { duplicate_insensitive: false, subtractable: true };
        let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(props));
        let rates = Rates::uniform(g.id_bound(), ratio);
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
        let out = decide_maxflow(&ov, &costs);
        prop_assert!(out.decisions.is_valid(&ov));
        // Writers always push.
        for (w, _) in ov.writers() {
            prop_assert!(out.decisions.is_push(w));
        }
    }

    // ---------- sharded ≡ single-threaded reference ----------

    #[test]
    fn sharded_engine_equals_reference_after_drain(
        seed in 0u64..100,
        shards in 2usize..6,
        strategy_pick in 0usize..3,
        agg_pick in 0usize..3,
        events in proptest::collection::vec((0u32..30, -50i64..50), 20..300),
        batch_size in 1usize..64,
    ) {
        fn check<A: Aggregate + Clone>(
            agg: A,
            ov: &Arc<Overlay>,
            d: &Decisions,
            shards: usize,
            strategy: PartitionStrategy,
            events: &[(u32, i64)],
            batch_size: usize,
        ) {
            let reference = Engine::from_core(Arc::new(EngineCore::new(
                agg.clone(),
                Arc::clone(ov),
                d,
                WindowSpec::Tuple(1),
            )));
            let sharded = ShardedEngine::new(
                agg,
                Arc::clone(ov),
                d,
                WindowSpec::Tuple(1),
                &ShardedConfig::builder()
                    .shards(shards)
                    .strategy(strategy)
                    .channel_capacity(64)
                    .build(),
            );
            let stream: Vec<Event> = events
                .iter()
                .map(|&(n, v)| Event::Write { node: NodeId(n), value: v })
                .collect();
            for (ts, e) in stream.iter().enumerate() {
                if let Event::Write { node, value } = *e {
                    reference.write(node, value, ts as u64);
                }
            }
            for batch in batch_events(&stream, batch_size, 0) {
                sharded.ingest(&batch).unwrap();
            }
            sharded.drain().unwrap();
            for n in 0..30u32 {
                assert_eq!(
                    sharded.read(NodeId(n)),
                    reference.read(NodeId(n)),
                    "node {n} diverged ({shards} shards, {strategy:?})"
                );
            }
            // Shard-executed reads must agree with the reference too: the
            // whole batch is evaluated by the owning workers (push
            // finalizes and pull trees alike), never the caller thread.
            let nodes: Vec<NodeId> = (0..30u32).map(NodeId).collect();
            let served = sharded.read_batch(&nodes).unwrap();
            for (i, &v) in nodes.iter().enumerate() {
                assert_eq!(
                    served[i],
                    reference.read(v),
                    "shard-executed read {v:?} diverged ({shards} shards, {strategy:?})"
                );
            }
            assert!(sharded.reads_served() > 0, "workers must serve the batch");
            sharded.shutdown();
        }

        let g = eagr::gen::social_graph(30, 3, seed);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = Decisions::all_push(&ov);
        // All three strategies must agree with the reference: the map the
        // engine runs over must never change the answers, only the share
        // of deltas that crosses shards.
        let strategy = match strategy_pick {
            0 => PartitionStrategy::Hash,
            1 => PartitionStrategy::Chunk { chunk_size: 8 },
            _ => PartitionStrategy::EdgeCut,
        };
        match agg_pick {
            0 => check(Sum, &ov, &d, shards, strategy, &events, batch_size),
            1 => check(Count, &ov, &d, shards, strategy, &events, batch_size),
            _ => check(Max, &ov, &d, shards, strategy, &events, batch_size),
        }
    }

    #[test]
    fn rebalance_during_ingest_preserves_differential(
        seed in 0u64..60,
        shards in 2usize..5,
        events in proptest::collection::vec((0u32..30, -50i64..50), 20..250),
        batch_size in 4usize..48,
        rebalance_every in 1usize..5,
    ) {
        // Live migration fuzz: interleave forced rebalances (threshold 0,
        // unbounded moves) with ingestion epochs at arbitrary batch sizes.
        // However the hot set and the map dance, the drained engine must
        // equal the single-threaded replay, point reads and shard-executed
        // batches alike. The nightly soak job runs this with
        // PROPTEST_CASES raised ~10× so migration races get real fuzz
        // time.
        let g = eagr::gen::social_graph(30, 3, seed);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = Decisions::all_push(&ov);
        let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
        let sharded = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(shards)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        let stream: Vec<Event> = events
            .iter()
            .map(|&(n, v)| Event::Write { node: NodeId(n), value: v })
            .collect();
        for (ts, e) in stream.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts as u64);
            }
        }
        for (i, batch) in batch_events(&stream, batch_size, 0).iter().enumerate() {
            sharded.ingest_epoch(batch).unwrap();
            if i % rebalance_every == rebalance_every - 1 {
                sharded.rebalance().unwrap();
            }
        }
        let nodes: Vec<NodeId> = (0..30u32).map(NodeId).collect();
        let served = sharded.read_batch(&nodes).unwrap();
        for (i, &v) in nodes.iter().enumerate() {
            prop_assert_eq!(
                sharded.read(v),
                reference.read(v),
                "point read {:?} diverged after migrations",
                v
            );
            prop_assert_eq!(
                served[i].clone(),
                reference.read(v),
                "shard-executed read {:?} diverged after migrations",
                v
            );
        }
        sharded.shutdown();
    }

    #[test]
    fn migration_during_concurrent_ingest_preserves_differential(
        seed in 0u64..60,
        shards in 2usize..5,
        events in proptest::collection::vec((0u32..30, -50i64..50), 20..250),
        batch_size in 4usize..48,
    ) {
        // Two-phase migration fuzz: an ingester thread streams the whole
        // workload while the main thread hammers the migration machinery —
        // observed-load rebalances, explicit ping-pong migrations, and
        // fence-piggybacked compaction (compact_after_orphans=1). Phase-1
        // copies therefore run with writes genuinely in flight, so the
        // side-log capture/replay path is exercised for real. The drained
        // engine must equal the single-threaded replay exactly. The
        // nightly soak job runs this with PROPTEST_CASES raised ~10× so
        // the copy/flip races get real fuzz time.
        let g = eagr::gen::social_graph(30, 3, seed);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = Decisions::all_push(&ov);
        let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
        let sharded = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(shards)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    compact_after_orphans: 1,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        let stream: Vec<Event> = events
            .iter()
            .map(|&(n, v)| Event::Write { node: NodeId(n), value: v })
            .collect();
        for (ts, e) in stream.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts as u64);
            }
        }
        let a = sharded.partition();
        let mut b = a.clone();
        for s in b.of.iter_mut() {
            s.0 = (s.0 + 1) % shards as u32;
        }
        let done = std::sync::atomic::AtomicBool::new(false);
        // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for batch in batch_events(&stream, batch_size, 0) {
                    sharded.ingest_epoch(&batch).unwrap();
                }
                done.store(true, std::sync::atomic::Ordering::Release);
            });
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                sharded.migrate_to(&b).unwrap();
                sharded.migrate_to(&a).unwrap();
                sharded.rebalance().unwrap();
            }
        });
        sharded.drain().unwrap();
        let nodes: Vec<NodeId> = (0..30u32).map(NodeId).collect();
        let served = sharded.read_batch(&nodes).unwrap();
        for (i, &v) in nodes.iter().enumerate() {
            prop_assert_eq!(
                sharded.read(v),
                reference.read(v),
                "point read {:?} diverged under concurrent migration",
                v
            );
            prop_assert_eq!(
                served[i].clone(),
                reference.read(v),
                "shard-executed read {:?} diverged under concurrent migration",
                v
            );
        }
        // Fence-piggybacked compaction fired on every committed migration;
        // a final sweep must leave zero orphans and identical answers.
        sharded.compact().unwrap();
        prop_assert_eq!(sharded.orphaned_pao_slots(), 0);
        for &v in &nodes {
            prop_assert_eq!(sharded.read(v), reference.read(v));
        }
        sharded.shutdown();
    }

    // ---------- dynamic topology ----------

    #[test]
    fn dynamic_overlay_repair_equals_fresh_rebuild(
        seed in 0u64..50,
        ops in proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 1..40),
        writes in proptest::collection::vec((any::<u32>(), -50i64..50), 10..120),
    ) {
        // Incremental repair differential: drive an arbitrary mutation
        // sequence through DynamicOverlay, then check the repaired overlay
        // against (a) a from-scratch rebuild over the mutated graph — any
        // node the fresh overlay serves, the repaired one must serve with
        // the same answer — and (b) the naive oracle as ground truth for
        // everything the repaired overlay serves.
        use eagr::overlay::{DynamicConfig, DynamicOverlay};
        let mut g = eagr::gen::social_graph(30, 3, seed);
        let props = eagr::agg::AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        };
        let ag0 = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let (ov0, _) = build_vnm(&ag0, &VnmConfig::vnma(props));
        let mut dyn_ov =
            DynamicOverlay::new(ov0, Neighborhood::In, props, DynamicConfig::default());
        for &(pick, a, b) in &ops {
            match pick {
                0 => {
                    let bound = g.id_bound() as u32;
                    let (u, v) = (NodeId(a % bound), NodeId(b % bound));
                    if u != v && g.contains(u) && g.contains(v) {
                        dyn_ov.add_edge(&mut g, u, v);
                    }
                }
                1 => {
                    let edges: Vec<_> = g.edges().collect();
                    if !edges.is_empty() {
                        let (u, v) = edges[a as usize % edges.len()];
                        dyn_ov.remove_edge(&mut g, u, v);
                    }
                }
                2 => {
                    dyn_ov.add_node(&mut g);
                }
                _ => {
                    let bound = g.id_bound() as u32;
                    let v = NodeId(a % bound);
                    if g.contains(v) && g.node_count() > 2 {
                        dyn_ov.remove_node(&mut g, v);
                    }
                }
            }
        }
        let repaired = Arc::new(dyn_ov.into_overlay());
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let fresh = Arc::new(Overlay::direct_from_bipartite(&ag));
        let dr = Decisions::all_push(&repaired);
        let df = Decisions::all_push(&fresh);
        let er = EngineCore::new(Sum, Arc::clone(&repaired), &dr, WindowSpec::Tuple(1));
        let ef = EngineCore::new(Sum, Arc::clone(&fresh), &df, WindowSpec::Tuple(1));
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        for (ts, &(n, v)) in writes.iter().enumerate() {
            let bound = g.id_bound() as u32;
            let node = NodeId(n % bound);
            if g.contains(node) {
                er.write(node, v, ts as u64);
                ef.write(node, v, ts as u64);
                oracle.write(node, v, ts as u64);
            }
        }
        for v in g.nodes() {
            let from_fresh = ef.read(v);
            let from_repair = er.read(v);
            if from_fresh.is_some() {
                prop_assert_eq!(
                    from_repair.clone(),
                    from_fresh,
                    "node {:?}: repaired overlay diverged from fresh rebuild",
                    v
                );
            }
            if let Some(got) = from_repair {
                prop_assert_eq!(got, oracle.read(&g, v), "node {:?} vs oracle", v);
            }
        }
    }

    #[test]
    fn churn_during_concurrent_ingest_matches_reference(
        seed in 0u64..40,
        shards in 2usize..5,
        epochs in 2usize..4,
        epoch_events in 40usize..120,
        churn_pct in 1u32..11,
    ) {
        // Sustained-churn differential through the facade: the same mixed
        // content/mutation stream goes through a sharded system — while a
        // prober thread hammers relaxed reads — and the single-threaded
        // reference. After every epoch both must agree on every answer and
        // on the mutation accounting. The nightly soak job runs this with
        // PROPTEST_CASES raised ~10x so topology epochs race real
        // concurrent traffic.
        use eagr::gen::{churn_stream, ChurnConfig};
        use std::sync::atomic::{AtomicBool, Ordering};
        let g = eagr::gen::social_graph(30, 3, seed);
        let stream = churn_stream(
            &g,
            &ChurnConfig {
                epochs,
                epoch_events,
                churn_fraction: churn_pct as f64 / 100.0,
                node_churn: 0.2,
                seed: seed.wrapping_mul(0x9E37_79B9),
                ..Default::default()
            },
        );
        let build = |mode| {
            EagrSystem::builder(EgoQuery::new(Sum))
                .overlay(OverlayAlgorithm::Vnma)
                .execution(mode)
                .build(&g)
        };
        let reference = build(eagr::ExecutionMode::SingleThreaded);
        let sharded = build(eagr::ExecutionMode::Sharded { shards });
        let mut bound = g.id_bound();
        for batch in &stream {
            for e in batch {
                if let Event::AddNode { node } = *e {
                    bound = bound.max(node.idx() + 1);
                }
            }
        }
        let done = AtomicBool::new(false);
        // Raised on every exit path — including assertion panics — so the
        // prober can't outlive the scope and wedge the join.
        struct StopOnDrop<'a>(&'a AtomicBool);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        std::thread::scope(|scope| {
            let _stop = StopOnDrop(&done);
            scope.spawn(|| {
                // Probe gently: a hot spin would monopolize a single-core
                // box and starve the ingest thread it races against.
                let mut i = 0u32;
                while !done.load(Ordering::Acquire) {
                    std::hint::black_box(sharded.read_relaxed(NodeId(i % bound as u32)));
                    i = i.wrapping_add(1);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
            for batch in &stream {
                let rr = reference.ingest(batch);
                let rs = sharded.ingest(batch);
                assert_eq!(rr, rs, "ingest reports diverged");
                assert!(rr.mutations > 0, "churn epochs carry mutations");
            }
        });
        let nodes: Vec<NodeId> = (0..bound as u32).map(NodeId).collect();
        prop_assert_eq!(sharded.read_batch(&nodes), reference.read_batch(&nodes));
        prop_assert_eq!(
            sharded.registry_stats().topo,
            reference.registry_stats().topo
        );
    }

    // ---------- end-to-end ----------

    #[test]
    fn engine_equals_oracle_on_arbitrary_interleavings(
        seed in 0u64..200,
        events in proptest::collection::vec((any::<bool>(), 0u32..40, -20i64..20), 1..200),
    ) {
        let g = eagr::gen::social_graph(40, 3, seed);
        let sys = EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Tuple(2)))
            .overlay(OverlayAlgorithm::Vnmn)
            .build(&g);
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(2), Neighborhood::In);
        for (ts, &(is_write, node, value)) in events.iter().enumerate() {
            let node = NodeId(node);
            if is_write {
                sys.write(node, value, ts as u64);
                oracle.write(node, value, ts as u64);
            } else if let Some(got) = sys.read(node) {
                prop_assert_eq!(got, oracle.read(&g, node));
            }
        }
        let _ = Event::Read { node: NodeId(0) };
    }
}

// ---------- deterministic structural checks ----------

#[test]
fn sharing_index_non_negative_on_incompressible_graph() {
    // An Erdős–Rényi graph has almost no bicliques; the algorithms must
    // never make the overlay *worse* than the bipartite graph.
    let g = eagr::gen::erdos_renyi(300, 3.0, 3);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let props = eagr::agg::AggProps {
        duplicate_insensitive: false,
        subtractable: true,
    };
    let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(props));
    assert!(ov.sharing_index() >= 0.0);
    assert!(ov.edge_count() <= ag.edge_count());
}

#[test]
fn empty_graph_edge_cases() {
    let g = DataGraph::with_nodes(5); // no edges at all
    let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    for v in 0..5u32 {
        assert_eq!(sys.read(NodeId(v)), None, "no neighborhoods, no readers");
    }
    assert_eq!(sys.write(NodeId(0), 1, 0), 0);
}
