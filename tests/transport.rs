//! The transport seam under the sharded runtime: WireCodec round-trips
//! (property-based), differential equivalence of the socket transport
//! against the in-process transport and the single-threaded reference,
//! and a smoke test that `TransportKind::Process` really runs shards as
//! separate OS processes.
//!
//! The process-transport tests resolve the `eagr-shard-host` binary
//! relative to the test executable (`target/<profile>/deps/..` →
//! `target/<profile>/eagr-shard-host`), which a workspace build produces;
//! `cargo build -p eagr-shard-host` or `EAGR_SHARD_HOST_BIN` covers
//! narrower invocations.

use eagr::agg::{Aggregate, DeltaOp, WindowBuffer};
use eagr::exec::transport::codec::{
    host_msg_bytes, host_msg_from, wire_msg_bytes, wire_msg_from, HostMsg, InitHeader, WireMsg,
    WirePlan,
};
use eagr::exec::transport::process::host_binary_path;
use eagr::exec::{EngineCore, ShardedConfig, ShardedEngine, TransportKind};
use eagr::flow::Decisions;
use eagr::gen::{batch_events, generate_events, social_graph, Event, WorkloadConfig};
use eagr::graph::{BipartiteGraph, NodeId, PartitionStrategy};
use eagr::overlay::{Overlay, OverlayId};
use eagr::prelude::*;
use eagr::util::wire::Wire;
use proptest::prelude::*;
use std::sync::Arc;

fn all_push_parts(n: usize, seed: u64) -> (DataGraph, Arc<Overlay>, Decisions) {
    let g = social_graph(n, 4, seed);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
    let d = Decisions::all_push(&ov);
    (g, ov, d)
}

fn sum_hooks() -> eagr::agg::WireHooks<Sum> {
    Sum.wire_hooks().expect("Sum ships wire hooks")
}

// ---------- WireCodec round-trips ----------

fn delta(insert: bool, v: i64) -> DeltaOp {
    if insert {
        DeltaOp::Insert(v)
    } else {
        DeltaOp::Remove(v)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_msg_writes_roundtrip(rows in proptest::collection::vec((any::<u32>(), any::<i64>(), any::<u64>()), 0..50)) {
        let hooks = sum_hooks();
        let writes: Vec<(OverlayId, i64, u64)> =
            rows.iter().map(|&(id, v, ts)| (OverlayId(id), v, ts)).collect();
        let bytes = wire_msg_bytes::<Sum>(&WireMsg::Writes(writes.clone()), &hooks);
        match wire_msg_from::<Sum>(&bytes, &hooks).unwrap() {
            WireMsg::Writes(back) => prop_assert_eq!(back, writes),
            _ => prop_assert!(false, "variant changed in flight"),
        }
    }

    #[test]
    fn wire_msg_deltas_roundtrip(rows in proptest::collection::vec((any::<u32>(), any::<bool>(), any::<i64>()), 0..50)) {
        let hooks = sum_hooks();
        let deltas: Vec<(OverlayId, DeltaOp)> =
            rows.iter().map(|&(id, ins, v)| (OverlayId(id), delta(ins, v))).collect();
        let bytes = wire_msg_bytes::<Sum>(&WireMsg::Deltas(deltas.clone()), &hooks);
        match wire_msg_from::<Sum>(&bytes, &hooks).unwrap() {
            WireMsg::Deltas(back) => prop_assert_eq!(back, deltas),
            _ => prop_assert!(false, "variant changed in flight"),
        }
    }

    #[test]
    fn wire_msg_reads_roundtrip(
        req_id in any::<u64>(),
        rows in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..50),
        want_reply in any::<bool>(),
    ) {
        let hooks = sum_hooks();
        let targets: Vec<(u64, NodeId)> =
            rows.iter().map(|&(pos, n)| (pos, NodeId(n))).collect();
        let msg = WireMsg::Reads { req_id, targets: targets.clone(), want_reply };
        let bytes = wire_msg_bytes::<Sum>(&msg, &hooks);
        match wire_msg_from::<Sum>(&bytes, &hooks).unwrap() {
            WireMsg::Reads { req_id: r, targets: t, want_reply: w } => {
                prop_assert_eq!(r, req_id);
                prop_assert_eq!(t, targets);
                prop_assert_eq!(w, want_reply);
            }
            _ => prop_assert!(false, "variant changed in flight"),
        }
    }

    #[test]
    fn wire_msg_install_slots_roundtrip(
        req_id in any::<u64>(),
        rows in proptest::collection::vec((any::<u32>(), any::<i64>(), any::<bool>(), proptest::collection::vec((any::<u64>(), any::<i64>()), 0..8)), 0..20),
    ) {
        let hooks = sum_hooks();
        let slots: Vec<(u32, i64, Option<WindowBuffer>)> = rows
            .iter()
            .map(|(slot, pao, windowed, entries)| {
                let win = windowed
                    .then(|| WindowBuffer::from_entries(WindowSpec::Tuple(8), entries.clone()));
                (*slot, *pao, win)
            })
            .collect();
        let msg = WireMsg::<Sum>::InstallSlots { req_id, slots: slots.clone() };
        let bytes = wire_msg_bytes::<Sum>(&msg, &hooks);
        match wire_msg_from::<Sum>(&bytes, &hooks).unwrap() {
            WireMsg::InstallSlots { req_id: r, slots: back } => {
                prop_assert_eq!(r, req_id);
                prop_assert_eq!(back.len(), slots.len());
                for ((s1, p1, w1), (s2, p2, w2)) in back.iter().zip(slots.iter()) {
                    prop_assert_eq!(s1, s2);
                    prop_assert_eq!(p1, p2);
                    prop_assert_eq!(
                        w1.as_ref().map(|w| w.entries().collect::<Vec<_>>()),
                        w2.as_ref().map(|w| w.entries().collect::<Vec<_>>())
                    );
                }
            }
            _ => prop_assert!(false, "variant changed in flight"),
        }
    }

    #[test]
    fn host_msg_roundtrips(
        dest in any::<u32>(),
        drows in proptest::collection::vec((any::<u32>(), any::<bool>(), any::<i64>()), 0..30),
        counters in (any::<u64>(), any::<u64>(), any::<u64>()),
        req_id in any::<u64>(),
        raw_answers in proptest::collection::vec((any::<u64>(), (any::<bool>(), any::<i64>())), 0..30),
    ) {
        let hooks = sum_hooks();
        let deltas: Vec<(OverlayId, DeltaOp)> =
            drows.iter().map(|&(id, ins, v)| (OverlayId(id), delta(ins, v))).collect();
        let answers: Vec<(u64, Option<i64>)> = raw_answers
            .iter()
            .map(|&(pos, (some, v))| (pos, some.then_some(v)))
            .collect();

        let bytes = host_msg_bytes::<Sum>(&HostMsg::Fwd { dest, deltas: deltas.clone() }, &hooks);
        match host_msg_from::<Sum>(&bytes, &hooks).unwrap() {
            HostMsg::Fwd { dest: d2, deltas: back } => {
                prop_assert_eq!(d2, dest);
                prop_assert_eq!(back, deltas);
            }
            _ => prop_assert!(false, "variant changed in flight"),
        }

        let (local, cross, reads) = counters;
        let bytes = host_msg_bytes::<Sum>(&HostMsg::Applied { local, cross, reads }, &hooks);
        match host_msg_from::<Sum>(&bytes, &hooks).unwrap() {
            HostMsg::Applied { local: l, cross: c, reads: r } => {
                prop_assert_eq!((l, c, r), (local, cross, reads));
            }
            _ => prop_assert!(false, "variant changed in flight"),
        }

        let bytes = host_msg_bytes::<Sum>(&HostMsg::ReadReplies { req_id, answers: answers.clone() }, &hooks);
        match host_msg_from::<Sum>(&bytes, &hooks).unwrap() {
            HostMsg::ReadReplies { req_id: r, answers: back } => {
                prop_assert_eq!(r, req_id);
                prop_assert_eq!(back, answers);
            }
            _ => prop_assert!(false, "variant changed in flight"),
        }
    }

    #[test]
    fn init_header_roundtrips(shard in any::<u32>(), shards in any::<u32>(), horizon in 1u64..1_000_000) {
        let header = InitHeader {
            shard,
            shards,
            aggregate: "SUM".to_string(),
            window: WindowSpec::Time(horizon),
        };
        prop_assert_eq!(InitHeader::from_wire(&header.to_wire()).unwrap(), header);
    }

    #[test]
    fn trailing_bytes_are_rejected(extra in 1usize..8) {
        let hooks = sum_hooks();
        let mut bytes = wire_msg_bytes::<Sum>(&WireMsg::Expire(7), &hooks);
        bytes.extend(vec![0u8; extra]);
        prop_assert!(wire_msg_from::<Sum>(&bytes, &hooks).is_err());
        let mut bytes = host_msg_bytes::<Sum>(&HostMsg::Ready, &hooks);
        bytes.extend(vec![0u8; extra]);
        prop_assert!(host_msg_from::<Sum>(&bytes, &hooks).is_err());
    }

    #[test]
    fn wire_plan_roundtrips(n in 20usize..80, seed in 0u64..500) {
        let (_, ov, d) = all_push_parts(n, seed);
        let plan = WirePlan {
            overlay: (*ov).clone(),
            decisions: d,
            map: (0..ov.node_count() as u32).map(|i| i % 3).collect(),
        };
        let back = WirePlan::from_wire(&plan.to_wire()).unwrap();
        prop_assert_eq!(back.map, plan.map);
        prop_assert_eq!(back.overlay.node_count(), plan.overlay.node_count());
        for id in 0..plan.overlay.node_count() as u32 {
            prop_assert_eq!(back.decisions.is_push(OverlayId(id)), plan.decisions.is_push(OverlayId(id)));
            prop_assert_eq!(back.overlay.outputs(OverlayId(id)), plan.overlay.outputs(OverlayId(id)));
            prop_assert_eq!(back.overlay.inputs(OverlayId(id)), plan.overlay.inputs(OverlayId(id)));
        }
    }
}

// ---------- differential: socket ≡ in-process ≡ single-threaded ----------

/// `cargo test` compiles the `eagr-shard-host` bin target only into
/// `target/<profile>/deps/<hash>`, never the unhashed path
/// [`host_binary_path`] resolves — so a fresh checkout's tier-1 run would
/// not find it. Build it on demand, once per test process, with the same
/// profile this test executable was built under.
fn require_host_binary() {
    static BUILD: std::sync::Once = std::sync::Once::new();
    BUILD.call_once(|| {
        if host_binary_path().is_ok() {
            return;
        }
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut cmd = std::process::Command::new(cargo);
        cmd.current_dir(root)
            .args(["build", "-p", "eagr-shard-host"]);
        let release = std::env::current_exe()
            .ok()
            .and_then(|p| {
                p.parent()
                    .and_then(|d| d.parent().map(|d| d.ends_with("release")))
            })
            .unwrap_or(false);
        if release {
            cmd.arg("--release");
        }
        let status = cmd.status();
        assert!(
            matches!(&status, Ok(s) if s.success()),
            "building eagr-shard-host failed: {status:?}"
        );
    });
    if let Err(e) = host_binary_path() {
        panic!("process-transport test needs the shard-host binary: {e}");
    }
}

fn sharded_with(
    ov: &Arc<Overlay>,
    d: &Decisions,
    window: WindowSpec,
    shards: usize,
    transport: TransportKind,
) -> ShardedEngine<Sum> {
    ShardedEngine::new(
        Sum,
        Arc::clone(ov),
        d,
        window,
        &ShardedConfig::builder()
            .shards(shards)
            .strategy(PartitionStrategy::Hash)
            .channel_capacity(256)
            .transport(transport)
            .build(),
    )
}

#[test]
fn socket_matches_in_process_and_single_threaded() {
    require_host_binary();
    let (g, ov, d) = all_push_parts(160, 0xD1FF);
    let window = WindowSpec::Tuple(4);
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, window);
    let inproc = sharded_with(&ov, &d, window, 3, TransportKind::InProcess);
    let socket = sharded_with(&ov, &d, window, 2, TransportKind::Process);
    assert_eq!(socket.transport_kind(), TransportKind::Process);

    let events = generate_events(
        160,
        &WorkloadConfig {
            events: 4000,
            write_to_read: 4.0,
            seed: 0xD1FF,
            ..Default::default()
        },
    );
    let nodes: Vec<NodeId> = g.nodes().collect();
    for (i, b) in batch_events(&events, 500, 0).iter().enumerate() {
        for (e, ts) in b.iter_timed() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts);
            }
        }
        inproc.ingest_epoch(b).unwrap();
        socket.ingest_epoch(b).unwrap();
        // Every epoch boundary must agree across all three engines —
        // including right after a live migration on each transport.
        let want: Vec<Option<i64>> = nodes.iter().map(|&v| reference.read(v)).collect();
        assert_eq!(
            inproc.read_batch(&nodes).unwrap(),
            want,
            "in-process diverged at epoch {i}"
        );
        assert_eq!(
            socket.read_batch(&nodes).unwrap(),
            want,
            "socket diverged at epoch {i}"
        );
        if i % 3 == 2 {
            inproc.rebalance().unwrap();
            socket.rebalance().unwrap();
        }
    }
    inproc.shutdown();
    socket.shutdown();
}

#[test]
fn socket_expiry_matches_reference_under_time_windows() {
    require_host_binary();
    let (g, ov, d) = all_push_parts(100, 0xE49);
    let window = WindowSpec::Time(64);
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, window);
    let socket = sharded_with(&ov, &d, window, 2, TransportKind::Process);

    let events = generate_events(
        100,
        &WorkloadConfig {
            events: 2000,
            write_to_read: 1e9,
            seed: 0xE49,
            ..Default::default()
        },
    );
    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut final_ts = 0;
    for b in &batch_events(&events, 250, 0) {
        for (e, ts) in b.iter_timed() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts);
            }
            final_ts = final_ts.max(ts);
        }
        socket.ingest_epoch(b).unwrap();
    }
    // Expire most of the stream over the wire; each host trims exactly the
    // writers it owns, the reference trims everything.
    let cutoff = final_ts + 40;
    reference.advance_time(cutoff);
    socket.advance_time_epoch(cutoff).unwrap();
    let want: Vec<Option<i64>> = nodes.iter().map(|&v| reference.read(v)).collect();
    assert_eq!(
        socket.read_batch(&nodes).unwrap(),
        want,
        "post-expiry state diverged"
    );
    socket.shutdown();
}

// ---------- OS-process smoke ----------

#[test]
fn shard_hosts_are_separate_os_processes() {
    require_host_binary();
    let (g, ov, d) = all_push_parts(80, 0x920C);
    let socket = sharded_with(&ov, &d, WindowSpec::Tuple(1), 2, TransportKind::Process);

    let pids = socket.host_pids();
    assert_eq!(pids.len(), 2, "one host process per shard");
    assert_ne!(pids[0], pids[1], "hosts must be distinct processes");
    for &pid in &pids {
        assert_ne!(pid, std::process::id(), "host must not be this process");
        assert!(
            std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "host {pid} must be alive while the engine runs"
        );
    }

    // And they actually do the work.
    let events = generate_events(
        80,
        &WorkloadConfig {
            events: 1000,
            write_to_read: 1e9,
            seed: 3,
            ..Default::default()
        },
    );
    let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    for b in &batch_events(&events, 200, 0) {
        for (e, ts) in b.iter_timed() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts);
            }
        }
        socket.ingest_epoch(b).unwrap();
    }
    for v in g.nodes() {
        assert_eq!(socket.read(v), reference.read(v), "{v:?}");
    }
    socket.shutdown();
    for &pid in &pids {
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "host {pid} must be reaped on shutdown"
        );
    }
}

#[test]
fn killed_host_surfaces_as_transport_error_not_hang() {
    require_host_binary();
    let (_, ov, d) = all_push_parts(60, 0xDEAD);
    let socket = sharded_with(&ov, &d, WindowSpec::Tuple(1), 2, TransportKind::Process);
    let pids = socket.host_pids();

    let events = generate_events(
        60,
        &WorkloadConfig {
            events: 200,
            write_to_read: 1e9,
            seed: 9,
            ..Default::default()
        },
    );
    let batches = batch_events(&events, 50, 0);
    socket.ingest_epoch(&batches[0]).unwrap();

    // SIGKILL one host out from under the engine: the pump thread sees the
    // socket close and every subsequent engine call must return `Err`
    // instead of spinning on the epoch barrier.
    let status = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -9 {}", pids[0]);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let mut failed = socket.ingest_epoch(&batches[1]).is_err();
        failed |= socket.read_batch(&[NodeId(0)]).is_err();
        if failed {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "engine never noticed the dead host"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    socket.shutdown();
}
