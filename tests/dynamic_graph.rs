//! Dynamic maintenance (§3.3) end to end: mutate the data graph through
//! [`DynamicOverlay`], rebuild an engine on the repaired overlay, and check
//! every read against a naive evaluation of the *new* graph.

use eagr::agg::{AggProps, Sum, WindowSpec};
use eagr::exec::EngineCore;
use eagr::flow::Decisions;
use eagr::gen::social_graph;
use eagr::graph::{BipartiteGraph, DataGraph, Neighborhood, NodeId};
use eagr::overlay::{
    build_iob, build_vnm, validate_against, DynamicConfig, DynamicOverlay, IobConfig, VnmConfig,
};
use eagr::util::{FastMap, SplitMix64};
use eagr::NaiveOracle;
use std::sync::Arc;

fn sum_props() -> AggProps {
    AggProps {
        duplicate_insensitive: false,
        subtractable: true,
    }
}

/// Check the §2.2.1 invariant against the *current* graph.
fn validate_now(dynov: &DynamicOverlay, g: &DataGraph, nbh: &Neighborhood) {
    let ov = dynov.overlay();
    validate_against(ov, sum_props(), |rid| {
        let (_, r) = ov.readers().find(|&(id, _)| id == rid).unwrap();
        nbh.select(g, r).into_iter().map(|w| (w.0, 1)).collect()
    })
    .unwrap_or_else(|e| panic!("invariant broken: {e}"));
}

/// Run writes through an engine on the maintained overlay and compare all
/// reads with the oracle.
fn check_execution(dynov: &DynamicOverlay, g: &DataGraph, seed: u64) {
    let ov = Arc::new(dynov.overlay().clone());
    let d = Decisions::all_push(&ov);
    let core = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
    let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
    let mut rng = SplitMix64::new(seed);
    for ts in 0..2000u64 {
        let v = NodeId(rng.index(g.id_bound()) as u32);
        if !g.contains(v) {
            continue;
        }
        let val = rng.range(0, 50) as i64;
        core.write(v, val, ts);
        oracle.write(v, val, ts);
    }
    for v in g.nodes() {
        if let Some(got) = core.read(v) {
            assert_eq!(got, oracle.read(g, v), "node {v:?}");
        }
    }
}

#[test]
fn random_edge_churn_on_iob_overlay() {
    let mut g = social_graph(120, 4, 3);
    let nbh = Neighborhood::In;
    let ag = BipartiteGraph::build(&g, &nbh, |_| true);
    let (ov, _) = build_iob(&ag, &IobConfig::default());
    let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());

    let mut rng = SplitMix64::new(77);
    for step in 0..150 {
        let u = NodeId(rng.index(120) as u32);
        let v = NodeId(rng.index(120) as u32);
        if u == v || !g.contains(u) || !g.contains(v) {
            continue;
        }
        if g.has_edge(u, v) {
            dynov.remove_edge(&mut g, u, v);
        } else {
            dynov.add_edge(&mut g, u, v);
        }
        if step % 25 == 0 {
            validate_now(&dynov, &g, &nbh);
        }
    }
    validate_now(&dynov, &g, &nbh);
    check_execution(&dynov, &g, 5);
}

#[test]
fn churn_on_vnm_overlay() {
    // Dynamic maintenance must also work on VNM-built overlays (the
    // IobState wrapper rebuilds the reverse index from coverage).
    let mut g = social_graph(100, 4, 11);
    let nbh = Neighborhood::In;
    let ag = BipartiteGraph::build(&g, &nbh, |_| true);
    let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());

    let mut rng = SplitMix64::new(99);
    for _ in 0..100 {
        let u = NodeId(rng.index(100) as u32);
        let v = NodeId(rng.index(100) as u32);
        if u == v {
            continue;
        }
        if g.has_edge(u, v) {
            dynov.remove_edge(&mut g, u, v);
        } else {
            dynov.add_edge(&mut g, u, v);
        }
    }
    validate_now(&dynov, &g, &nbh);
    check_execution(&dynov, &g, 6);
}

#[test]
fn node_lifecycle() {
    let mut g = social_graph(80, 3, 21);
    let nbh = Neighborhood::In;
    let ag = BipartiteGraph::build(&g, &nbh, |_| true);
    let (ov, _) = build_iob(&ag, &IobConfig::default());
    let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());

    // Add 10 fresh nodes, wire each to a few existing ones.
    let mut rng = SplitMix64::new(31);
    let mut fresh = Vec::new();
    for _ in 0..10 {
        let n = dynov.add_node(&mut g);
        fresh.push(n);
        for _ in 0..3 {
            let t = NodeId(rng.index(80) as u32);
            if t != n {
                dynov.add_edge(&mut g, t, n); // t writes into n's feed
                dynov.add_edge(&mut g, n, t);
            }
        }
    }
    validate_now(&dynov, &g, &nbh);

    // Delete 10 original nodes, including high-degree ones.
    for v in 0..10u32 {
        if g.contains(NodeId(v)) {
            dynov.remove_node(&mut g, NodeId(v));
        }
    }
    validate_now(&dynov, &g, &nbh);
    check_execution(&dynov, &g, 7);
}

#[test]
fn bulk_neighborhood_growth_builds_aggregates() {
    // Hub-and-spoke growth: many edges landing on one reader must trigger
    // the Δ-threshold path (a shared partial aggregate for the delta).
    let mut g = DataGraph::with_nodes(60);
    // Baseline: a small ring so every node has a reader.
    for v in 0..60u32 {
        g.add_edge(NodeId(v), NodeId((v + 1) % 60));
    }
    let nbh = Neighborhood::In;
    let ag = BipartiteGraph::build(&g, &nbh, |_| true);
    let (ov, _) = build_iob(&ag, &IobConfig::default());
    let cfg = DynamicConfig {
        delta_threshold: 2,
        ..Default::default()
    };
    let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), cfg);

    // Two readers acquire the same 12 new in-neighbors; the repair should
    // route them through shared structure where possible.
    for r in [NodeId(10), NodeId(20)] {
        for w in 40..52u32 {
            dynov.add_edge(&mut g, NodeId(w), r);
        }
    }
    validate_now(&dynov, &g, &nbh);
    check_execution(&dynov, &g, 8);
}

#[test]
fn deletion_cancellation_with_negative_edges() {
    // Deleting an edge whose writer reaches the reader only through a
    // shared partial is repaired with a negative edge (subtractable
    // aggregates). Verify results, not just structure.
    let mut g = DataGraph::with_nodes(30);
    // Ten readers share writers 0..5.
    for r in 10..20u32 {
        for w in 0..5u32 {
            g.add_edge(NodeId(w), NodeId(r));
        }
    }
    let nbh = Neighborhood::In;
    let ag = BipartiteGraph::build(&g, &nbh, |_| true);
    let (ov, _) = build_iob(&ag, &IobConfig::default());
    assert!(ov.partial_count() >= 1, "shared block must be factored");
    let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());

    // Reader 10 drops writer 3; everyone else keeps it.
    dynov.remove_edge(&mut g, NodeId(3), NodeId(10));
    validate_now(&dynov, &g, &nbh);

    // Count negative edges: the local repair may use one.
    let ov = dynov.overlay();
    let negs: usize = ov
        .ids()
        .map(|n| {
            ov.inputs(n)
                .iter()
                .filter(|&&(_, s)| s.is_negative())
                .count()
        })
        .sum();
    let _ = negs; // structure depends on thresholds; correctness is what matters
    check_execution(&dynov, &g, 9);
}

#[test]
fn stale_reader_retired_when_neighborhood_empties() {
    let mut g = DataGraph::with_nodes(5);
    g.add_edge(NodeId(0), NodeId(1));
    let nbh = Neighborhood::In;
    let ag = BipartiteGraph::build(&g, &nbh, |_| true);
    let (ov, _) = build_iob(&ag, &IobConfig::default());
    let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());
    assert!(dynov.overlay().reader(NodeId(1)).is_some());
    dynov.remove_edge(&mut g, NodeId(0), NodeId(1));
    assert!(
        dynov.overlay().reader(NodeId(1)).is_none(),
        "reader with empty neighborhood must be retired"
    );
}

#[test]
fn repeated_maintenance_keeps_coverage_index_sound() {
    // The reverse index and coverage sets must stay in sync through long
    // churn; probe by re-validating an expectation map built from scratch.
    let mut g = social_graph(60, 3, 55);
    let nbh = Neighborhood::In;
    let ag = BipartiteGraph::build(&g, &nbh, |_| true);
    let (ov, _) = build_iob(&ag, &IobConfig::default());
    let mut dynov = DynamicOverlay::new(ov, nbh.clone(), sum_props(), DynamicConfig::default());
    let mut rng = SplitMix64::new(123);
    for _ in 0..200 {
        let u = NodeId(rng.index(60) as u32);
        let v = NodeId(rng.index(60) as u32);
        if u == v || !g.contains(u) || !g.contains(v) {
            continue;
        }
        if rng.chance(0.5) && g.has_edge(u, v) {
            dynov.remove_edge(&mut g, u, v);
        } else {
            dynov.add_edge(&mut g, u, v);
        }
    }
    // Every live partial's coverage must equal the union of its inputs'.
    let ov = dynov.overlay();
    for n in ov.ids() {
        if matches!(ov.kind(n), eagr::overlay::OverlayKind::Partial) {
            let mut want: Vec<u32> = ov
                .inputs(n)
                .iter()
                .flat_map(|&(f, _)| ov.coverage(f).iter().copied())
                .collect();
            want.sort_unstable();
            want.dedup();
            let mut got = ov.coverage(n).to_vec();
            got.sort_unstable();
            // Coverage may be a superset only if a writer vanished from an
            // input but remained recorded — the maintenance purges those,
            // so demand equality.
            assert_eq!(got, want, "coverage drift at {n:?}");
        }
    }
    let _ = FastMap::<u32, u32>::default();
    validate_now(&dynov, &g, &nbh);
}
