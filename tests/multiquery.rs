//! Multi-query serving invariants (registry attach/detach over shared
//! overlay state):
//!
//! * **differential**: N overlapping queries attached and detached at
//!   arbitrary points of an arbitrary write stream each answer exactly
//!   like a single-query single-threaded system that replayed the same
//!   prefix — in single-threaded *and* sharded execution;
//! * **refcounting**: detaching one query never perturbs the answers of
//!   the queries that remain;
//! * **sharing**: attaching an overlapping query onto a warm system
//!   materializes strictly fewer PAOs than compiling it cold.

use eagr::gen::Event;
use eagr::prelude::*;
use proptest::prelude::*;

/// One randomized query shape: readers are the nodes with `v % m == r`,
/// window is `Tuple(c)`.
#[derive(Clone, Copy, Debug)]
struct QuerySpec {
    m: u32,
    r: u32,
    c: usize,
}

impl QuerySpec {
    fn query(&self) -> EgoQuery<Sum> {
        let (m, r) = (self.m, self.r);
        EgoQuery::new(Sum)
            .window(WindowSpec::Tuple(self.c))
            .filter(move |v| v.0 % m == r)
    }
}

fn spec_strategy() -> impl Strategy<Value = QuerySpec> {
    (1u32..4, 0u32..3, 1usize..4).prop_map(|(m, r, c)| QuerySpec { m, r: r % m, c })
}

/// A fresh single-threaded single-query system over the same event prefix
/// — the differential oracle for one registered query.
fn reference(spec: QuerySpec, g: &DataGraph, prefix: &[Event]) -> Vec<Option<i64>> {
    let sys = EagrSystem::builder(spec.query()).build(g);
    sys.ingest(prefix);
    let nodes: Vec<NodeId> = g.nodes().collect();
    sys.read_batch(&nodes)
}

fn check_differential(mode: ExecutionMode, specs: &[QuerySpec], writes: &[(u32, i64)]) {
    const N: usize = 40;
    let g = eagr::gen::social_graph(N, 3, 0xD1FF);
    let nodes: Vec<NodeId> = g.nodes().collect();
    let events: Vec<Event> = writes
        .iter()
        .map(|&(n, value)| Event::Write {
            node: NodeId(n % N as u32),
            value,
        })
        .collect();
    // Phase boundaries: attach specs[i] after phase i's ingest.
    let phases = specs.len() + 1;
    let chunk = events.len().div_ceil(phases).max(1);

    let sys = EagrSystem::builder(specs[0].query())
        .execution(mode)
        .build(&g);
    let mut handles = vec![sys.handle()];
    let mut live_specs = vec![specs[0]];
    let mut seen: Vec<Event> = Vec::new();

    for (i, phase) in events.chunks(chunk).enumerate() {
        sys.ingest(phase);
        seen.extend_from_slice(phase);
        if let Some(&spec) = specs.get(i + 1) {
            handles.push(sys.attach(spec.query()));
            live_specs.push(spec);
        }
        // Every live handle answers like its single-query reference on
        // the shared prefix — including the one attached mid-stream,
        // whose fresh writers were backfilled from the history ring.
        for (h, &spec) in handles.iter().zip(&live_specs) {
            let want = reference(spec, &g, &seen);
            let got = h.read_batch(&nodes);
            assert_eq!(got, want, "{mode:?} query {spec:?} after phase {i}");
        }
    }

    // Detach the *first* query; the survivors must be untouched.
    if handles.len() > 1 {
        let first = handles.remove(0);
        let first_spec = live_specs.remove(0);
        sys.detach(first.clone());
        assert!(!first.is_attached());
        assert!(
            first.read_batch(&nodes).iter().all(Option::is_none),
            "detached handle must answer None"
        );
        let _ = first_spec;
        for (h, &spec) in handles.iter().zip(&live_specs) {
            let want = reference(spec, &g, &seen);
            assert_eq!(
                h.read_batch(&nodes),
                want,
                "{mode:?} query {spec:?} after detach of another query"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multi_query_answers_match_single_query_references(
        specs in proptest::collection::vec(spec_strategy(), 1..=3),
        writes in proptest::collection::vec((0u32..40, -50i64..50), 30..150),
    ) {
        check_differential(ExecutionMode::SingleThreaded, &specs, &writes);
    }

    #[test]
    fn multi_query_answers_match_references_sharded(
        specs in proptest::collection::vec(spec_strategy(), 1..=3),
        writes in proptest::collection::vec((0u32..40, -50i64..50), 30..150),
    ) {
        check_differential(ExecutionMode::Sharded { shards: 3 }, &specs, &writes);
    }
}

#[test]
fn detach_never_tears_down_shared_paos() {
    let g = eagr::gen::social_graph(100, 4, 0xCAFE);
    let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    let events: Vec<Event> = (0..1500)
        .map(|i| Event::Write {
            node: NodeId(i % 100),
            value: (i as i64 % 91) - 45,
        })
        .collect();
    sys.ingest(&events);
    let nodes: Vec<NodeId> = g.nodes().collect();

    // Two overlapping secondary queries over the primary's stratum.
    let a = sys.attach(EgoQuery::new(Sum).filter(|v| v.0 < 60));
    let b = sys.attach(EgoQuery::new(Sum).filter(|v| v.0 >= 30));
    assert_eq!(sys.registry_stats().queries, 3);
    let b_before = b.read_batch(&nodes);
    let primary_before = sys.read_batch(&nodes);

    // Dropping `a` releases its refcounts; everything `b` and the primary
    // read is still referenced and must survive with identical state.
    let report = sys.detach(a);
    assert!(!report.stratum_dropped);
    assert_eq!(b.read_batch(&nodes), b_before, "b's answers changed");
    assert_eq!(sys.read_batch(&nodes), primary_before, "primary changed");
    assert_eq!(sys.registry_stats().queries, 2);
}

#[test]
fn warm_attach_materializes_fewer_paos_than_cold_build() {
    let g = eagr::gen::social_graph(120, 4, 0xBEEF);
    // Primary covers most of the graph; the new query overlaps it.
    let sys = EagrSystem::builder(EgoQuery::new(Sum).filter(|v| v.0 < 100)).build(&g);
    let warm = sys
        .attach(EgoQuery::new(Sum))
        .attach_report()
        .expect("attached");
    assert!(warm.shared_stratum);
    assert!(warm.reused_paos > 0, "{warm:?}");
    assert!(warm.reuse_fraction() > 0.0, "{warm:?}");

    // The same query compiled against a *fresh* system (its cold build)
    // must materialize strictly more.
    let cold_sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    let cold = cold_sys.handle().attach_report().expect("primary");
    assert!(!cold.shared_stratum);
    assert!(
        warm.materialized() < cold.fresh_paos,
        "warm attach must beat cold build: {} vs {}",
        warm.materialized(),
        cold.fresh_paos
    );
}
