//! Smoke test pinning the public facade API exactly as the crate-level
//! doctest in `crates/core/src/lib.rs` presents it: builder construction,
//! write/read round-trip, and the prelude surface. If this breaks, the
//! README / doc quick-start is broken too.

use eagr::prelude::*;

#[test]
fn quickstart_doctest_path_works() {
    // Mirrors the `eagr` crate-level doctest line for line.
    let g = eagr::gen::social_graph(200, 4, 7);
    let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);

    sys.write(NodeId(3), 10, 0);
    sys.write(NodeId(5), 32, 1);
    let trend = sys.read(NodeId(0));
    assert!(trend.is_some());
}

#[test]
fn facade_reexports_all_subsystem_modules() {
    // One symbol per re-exported module: if a module vanishes from the
    // facade, this stops compiling.
    let _ = eagr::util::SplitMix64::new(1);
    let g = eagr::graph::DataGraph::with_nodes(2);
    let _ = eagr::agg::Sum;
    let ag = eagr::graph::BipartiteGraph::build(&g, &eagr::graph::Neighborhood::In, |_| true);
    let _ = eagr::overlay::Overlay::direct_from_bipartite(&ag);
    let _ = eagr::flow::Rates::uniform(2, 1.0);
    let _ = eagr::exec::ParallelConfig::default();
    let _ = eagr::gen::erdos_renyi(4, 1.0, 1);
}

#[test]
fn write_then_read_reflects_neighbor_values() {
    // A concrete graph where the expected aggregate is computable by hand:
    // the paper's 7-node running example under SUM over in-neighbors.
    let g = eagr::graph::paper_example_graph();
    let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    for (ts, v) in g.nodes().enumerate() {
        sys.write(v, 1, ts as u64);
    }
    for v in g.nodes() {
        let n = g.in_neighbors(v).len() as i64;
        if n > 0 {
            assert_eq!(sys.read(v), Some(n), "reader {v:?}");
        }
    }
}
