//! Larger end-to-end scenarios: realistic workloads, windows, splitting,
//! time-based expiry, and the system-level stats surface.

use eagr::gen::{generate_events, social_graph, web_graph, Event, WorkloadConfig};
use eagr::prelude::*;
use eagr::OverlayAlgorithm;

#[test]
fn trend_feed_scenario_with_splitting() {
    // A 400-node social graph, skewed Zipfian workload, TOP-K trends,
    // max-flow decisions with §4.7 splitting enabled.
    let n = 400;
    let g = social_graph(n, 6, 101);
    let rates = eagr::gen::zipf_rates(n, 1.0, 2.0, 7);
    let sys = EagrSystem::builder(EgoQuery::new(TopK::new(5)))
        .overlay(OverlayAlgorithm::Vnmn)
        .rates(rates)
        .split(true)
        .build(&g);
    let mut oracle = NaiveOracle::new(TopK::new(5), WindowSpec::Tuple(1), Neighborhood::In);
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 10_000,
            write_to_read: 2.0,
            seed: 42,
            ..Default::default()
        },
    );
    for (ts, e) in events.iter().enumerate() {
        match *e {
            Event::Write { node, value } => {
                sys.write(node, value, ts as u64);
                oracle.write(node, value, ts as u64);
            }
            Event::Read { node } => {
                if let Some(got) = sys.read(node) {
                    assert_eq!(got, oracle.read(&g, node));
                }
            }
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {
                unreachable!("generate_events emits no topology mutations")
            }
        }
    }
    let st = sys.stats();
    assert!(
        st.sharing_index > 0.0,
        "social graph should still share some"
    );
    assert!(st.overlay_edges < st.bipartite_edges);
}

#[test]
fn time_windows_with_expiry() {
    let n = 120;
    let g = web_graph(n, 6, 0.85, 7);
    let window = WindowSpec::Time(50);
    let sys = EagrSystem::builder(EgoQuery::new(Sum).window(window))
        .overlay(OverlayAlgorithm::Vnma)
        .build(&g);
    let mut oracle = NaiveOracle::new(Sum, window, Neighborhood::In);
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 4000,
            write_to_read: 8.0,
            seed: 9,
            ..Default::default()
        },
    );
    for (ts, e) in events.iter().enumerate() {
        let ts = ts as u64;
        match *e {
            Event::Write { node, value } => {
                sys.write(node, value, ts);
                oracle.write(node, value, ts);
            }
            Event::Read { node } => {
                // Expire both sides to the same watermark before comparing.
                sys.advance_time(ts);
                oracle.advance_time(ts);
                if let Some(got) = sys.read(node) {
                    assert_eq!(got, oracle.read(&g, node), "at ts {ts}");
                }
            }
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {
                unreachable!("generate_events emits no topology mutations")
            }
        }
    }
}

#[test]
fn wide_tuple_windows() {
    let n = 100;
    let g = social_graph(n, 4, 13);
    let window = WindowSpec::Tuple(10);
    let sys = EagrSystem::builder(EgoQuery::new(Avg).window(window))
        .overlay(OverlayAlgorithm::Vnma)
        .writer_window(10)
        .build(&g);
    let mut oracle = NaiveOracle::new(Avg, window, Neighborhood::In);
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: 5000,
            write_to_read: 5.0,
            seed: 17,
            ..Default::default()
        },
    );
    for (ts, e) in events.iter().enumerate() {
        match *e {
            Event::Write { node, value } => {
                sys.write(node, value, ts as u64);
                oracle.write(node, value, ts as u64);
            }
            Event::Read { node } => {
                if let Some(got) = sys.read(node) {
                    let want = oracle.read(&g, node);
                    match (got, want) {
                        (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                        (a, b) => assert_eq!(a, b),
                    }
                }
            }
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {
                unreachable!("generate_events emits no topology mutations")
            }
        }
    }
}

#[test]
fn reader_predicate_limits_queries() {
    let n = 200;
    let g = social_graph(n, 4, 23);
    let sys = EagrSystem::builder(EgoQuery::new(Count).filter(|v| v.0 < 50))
        .overlay(OverlayAlgorithm::Vnma)
        .build(&g);
    sys.write(NodeId(60), 1, 0);
    // Nodes ≥ 50 have no readers.
    assert_eq!(sys.read(NodeId(60)), None);
    assert_eq!(sys.read(NodeId(199)), None);
    // Nodes < 50 answer (possibly 0).
    let answered = (0..50).filter(|&v| sys.read(NodeId(v)).is_some()).count();
    assert!(answered > 0);
}

#[test]
fn quiet_system_returns_identity_values() {
    let g = social_graph(50, 3, 31);
    let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
    for v in g.nodes() {
        if let Some(s) = sys.read(v) {
            assert_eq!(s, 0, "no writes yet");
        }
    }
    let sys_max = EagrSystem::builder(EgoQuery::new(Max)).build(&g);
    for v in g.nodes() {
        if let Some(m) = sys_max.read(v) {
            assert_eq!(m, None, "empty window has no max");
        }
    }
}

#[test]
fn overlay_beats_baseline_in_modeled_cost() {
    // The modeled cost of the optimal plan on the shared overlay must beat
    // both baselines on the *direct* structure — the analytical version of
    // the paper's Fig 14(a) claim.
    let n = 300;
    let g = social_graph(n, 6, 47);
    let rates = eagr::gen::zipf_rates(n, 1.0, 1.0, 3);
    let shared = EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(OverlayAlgorithm::Vnmn)
        .rates(rates.clone())
        .build(&g);
    let push = EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(OverlayAlgorithm::Direct)
        .decisions(DecisionAlgorithm::AllPush)
        .split(false)
        .rates(rates.clone())
        .build(&g);
    let pull = EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(OverlayAlgorithm::Direct)
        .decisions(DecisionAlgorithm::AllPull)
        .split(false)
        .rates(rates)
        .build(&g);
    let c = |s: &EagrSystem<Sum>| s.stats().modeled_cost;
    assert!(c(&shared) < c(&push), "{} !< {}", c(&shared), c(&push));
    assert!(c(&shared) < c(&pull), "{} !< {}", c(&shared), c(&pull));
}
