//! The central correctness property of the whole system: for any graph, any
//! overlay construction algorithm, any dataflow decisions, and any built-in
//! aggregate, reading through the compiled overlay gives exactly the answer
//! a naive from-scratch evaluation gives (paper §2.2.1's invariant, end to
//! end).

use eagr::gen::{generate_events, social_graph, web_graph, Event, WorkloadConfig};
use eagr::graph::paper_example_graph;
use eagr::prelude::*;
use eagr::OverlayAlgorithm;

#[allow(clippy::too_many_arguments)]
fn replay_and_check<A>(
    g: &DataGraph,
    agg: A,
    window: WindowSpec,
    neighborhood: Neighborhood,
    overlay: OverlayAlgorithm,
    decisions: DecisionAlgorithm,
    events: usize,
    seed: u64,
) where
    A: Aggregate + Clone,
    A::Output: Send,
{
    let sys = EagrSystem::builder(
        EgoQuery::new(agg.clone())
            .window(window)
            .neighborhood(neighborhood.clone()),
    )
    .overlay(overlay.clone())
    .decisions(decisions)
    .build(g);
    let mut oracle = NaiveOracle::new(agg, window, neighborhood);
    let stream = generate_events(
        g.node_count(),
        &WorkloadConfig {
            events,
            write_to_read: 4.0,
            seed,
            ..Default::default()
        },
    );
    for (ts, e) in stream.iter().enumerate() {
        match *e {
            Event::Write { node, value } => {
                sys.write(node, value, ts as u64);
                oracle.write(node, value, ts as u64);
            }
            Event::Read { node } => {
                if let Some(got) = sys.read(node) {
                    assert_eq!(
                        got,
                        oracle.read(g, node),
                        "mid-stream read at {node:?} diverged ({overlay:?}/{decisions:?})"
                    );
                }
            }
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {
                unreachable!("generate_events emits no topology mutations")
            }
        }
    }
    // Final sweep over every reader.
    for v in g.nodes() {
        if let Some(got) = sys.read(v) {
            assert_eq!(got, oracle.read(g, v), "final read at {v:?} diverged");
        }
    }
}

#[test]
fn sum_across_all_overlay_algorithms() {
    let g = social_graph(150, 4, 21);
    for overlay in [
        OverlayAlgorithm::Direct,
        OverlayAlgorithm::Vnm { chunk_size: 32 },
        OverlayAlgorithm::Vnma,
        OverlayAlgorithm::Vnmn,
        OverlayAlgorithm::Iob,
    ] {
        replay_and_check(
            &g,
            Sum,
            WindowSpec::Tuple(1),
            Neighborhood::In,
            overlay,
            DecisionAlgorithm::MaxFlow,
            3000,
            1,
        );
    }
}

#[test]
fn max_across_duplicate_insensitive_overlays() {
    let g = web_graph(150, 8, 0.85, 5);
    for overlay in [
        OverlayAlgorithm::Vnma,
        OverlayAlgorithm::Vnmd,
        OverlayAlgorithm::Iob,
    ] {
        replay_and_check(
            &g,
            Max,
            WindowSpec::Tuple(2),
            Neighborhood::In,
            overlay,
            DecisionAlgorithm::MaxFlow,
            3000,
            2,
        );
    }
}

#[test]
fn all_aggregates_on_vnmn_overlay() {
    // Negative edges exercise `unmerge` on every subtractable aggregate.
    let g = social_graph(120, 5, 33);
    replay_and_check(
        &g,
        Sum,
        WindowSpec::Tuple(3),
        Neighborhood::In,
        OverlayAlgorithm::Vnmn,
        DecisionAlgorithm::MaxFlow,
        2500,
        3,
    );
    replay_and_check(
        &g,
        Count,
        WindowSpec::Tuple(3),
        Neighborhood::In,
        OverlayAlgorithm::Vnmn,
        DecisionAlgorithm::MaxFlow,
        2500,
        4,
    );
    replay_and_check(
        &g,
        TopK::new(3),
        WindowSpec::Tuple(3),
        Neighborhood::In,
        OverlayAlgorithm::Vnmn,
        DecisionAlgorithm::MaxFlow,
        2500,
        5,
    );
    replay_and_check(
        &g,
        Distinct,
        WindowSpec::Tuple(3),
        Neighborhood::In,
        OverlayAlgorithm::Vnmn,
        DecisionAlgorithm::MaxFlow,
        2500,
        6,
    );
    replay_and_check(
        &g,
        Avg,
        WindowSpec::Tuple(3),
        Neighborhood::In,
        OverlayAlgorithm::Vnmn,
        DecisionAlgorithm::MaxFlow,
        2500,
        7,
    );
    replay_and_check(
        &g,
        Min,
        WindowSpec::Tuple(3),
        Neighborhood::In,
        OverlayAlgorithm::Vnma,
        DecisionAlgorithm::MaxFlow,
        2500,
        8,
    );
}

#[test]
fn all_decision_policies_agree() {
    let g = social_graph(100, 4, 44);
    for decisions in [
        DecisionAlgorithm::MaxFlow,
        DecisionAlgorithm::Greedy,
        DecisionAlgorithm::AllPush,
        DecisionAlgorithm::AllPull,
    ] {
        replay_and_check(
            &g,
            Sum,
            WindowSpec::Tuple(1),
            Neighborhood::In,
            OverlayAlgorithm::Vnma,
            decisions,
            2000,
            9,
        );
    }
}

#[test]
fn two_hop_neighborhoods() {
    let g = social_graph(80, 3, 55);
    for overlay in [OverlayAlgorithm::Vnma, OverlayAlgorithm::Iob] {
        replay_and_check(
            &g,
            Sum,
            WindowSpec::Tuple(1),
            Neighborhood::KHopIn(2),
            overlay,
            DecisionAlgorithm::MaxFlow,
            1500,
            10,
        );
    }
}

#[test]
fn out_and_undirected_neighborhoods() {
    let g = web_graph(100, 6, 0.8, 66);
    replay_and_check(
        &g,
        Sum,
        WindowSpec::Tuple(1),
        Neighborhood::Out,
        OverlayAlgorithm::Vnma,
        DecisionAlgorithm::MaxFlow,
        1500,
        11,
    );
    replay_and_check(
        &g,
        Sum,
        WindowSpec::Tuple(1),
        Neighborhood::Undirected,
        OverlayAlgorithm::Vnma,
        DecisionAlgorithm::MaxFlow,
        1500,
        12,
    );
}

#[test]
fn filtered_neighborhood() {
    let g = social_graph(90, 4, 77);
    replay_and_check(
        &g,
        Sum,
        WindowSpec::Tuple(1),
        Neighborhood::filtered(Neighborhood::In, |_, u| u.0 % 3 != 0),
        OverlayAlgorithm::Vnma,
        DecisionAlgorithm::MaxFlow,
        1500,
        13,
    );
}

#[test]
fn paper_example_under_every_algorithm() {
    let g = paper_example_graph();
    for overlay in [
        OverlayAlgorithm::Direct,
        OverlayAlgorithm::Vnma,
        OverlayAlgorithm::Vnmn,
        OverlayAlgorithm::Iob,
    ] {
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(overlay)
            .build(&g);
        let streams: [(u32, &[i64]); 7] = [
            (0, &[1, 4]),
            (1, &[3, 7]),
            (2, &[6, 9]),
            (3, &[8, 4, 3]),
            (4, &[5, 9, 1]),
            (5, &[3, 6, 6]),
            (6, &[5]),
        ];
        let mut ts = 0;
        for (node, vals) in streams {
            for &v in vals {
                sys.write(NodeId(node), v, ts);
                ts += 1;
            }
        }
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(sys.read(NodeId(v as u32)), Some(w), "reader {v}");
        }
    }
}
