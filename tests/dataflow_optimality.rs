//! Optimality guarantees of the §4 decision machinery on randomized
//! instances: the max-flow solution must match exhaustive enumeration
//! (Theorem 4.1), pruning must not change it (Theorem 4.2), and the greedy
//! fallback must be valid and never better than optimal.

use eagr::agg::CostModel;
use eagr::flow::{
    decide_greedy, decide_maxflow, node_costs, propagate_frequencies, Decisions, Rates,
};
use eagr::graph::{BipartiteGraph, NodeId};
use eagr::overlay::{build_vnm, Overlay, OverlayId, VnmConfig};
use eagr::util::SplitMix64;

/// Exhaustive minimum over all constraint-respecting partitions.
fn brute_force(ov: &Overlay, costs: &[(f64, f64)]) -> f64 {
    let ids: Vec<OverlayId> = ov.ids().collect();
    let n = ids.len();
    assert!(n <= 22, "instance too large for brute force");
    let mut best = f64::INFINITY;
    'outer: for mask in 0u32..(1u32 << n) {
        let pos = |id: OverlayId| ids.iter().position(|&x| x == id).unwrap();
        let is_push = |id: OverlayId| mask & (1 << pos(id)) != 0;
        for &u in &ids {
            if !is_push(u) {
                for &(t, _) in ov.outputs(u) {
                    if is_push(t) {
                        continue 'outer;
                    }
                }
            }
        }
        for (w, _) in ov.writers() {
            if !is_push(w) {
                continue 'outer;
            }
        }
        let cost: f64 = ids
            .iter()
            .map(|&id| {
                if is_push(id) {
                    costs[id.idx()].0
                } else {
                    costs[id.idx()].1
                }
            })
            .sum();
        best = best.min(cost);
    }
    best
}

/// A small random multi-level overlay plus random rates.
fn random_instance(seed: u64) -> (Overlay, Rates) {
    let mut rng = SplitMix64::new(seed);
    let writers = 3 + rng.index(3); // 3..=5
    let readers = 3 + rng.index(3);
    let mut lists = Vec::new();
    for r in 0..readers {
        let mut inputs = Vec::new();
        for w in 0..writers {
            if rng.chance(0.6) {
                inputs.push(NodeId(w as u32));
            }
        }
        if inputs.is_empty() {
            inputs.push(NodeId(rng.index(writers) as u32));
        }
        lists.push((NodeId((100 + r) as u32), inputs));
    }
    let ag = BipartiteGraph::from_input_lists(200, lists);
    let props = eagr::agg::AggProps {
        duplicate_insensitive: false,
        subtractable: true,
    };
    let (ov, _) = build_vnm(&ag, &VnmConfig::vnm(8, props));
    let n = 200;
    let mut rates = Rates::uniform(n, 1.0);
    for v in 0..n {
        rates.read[v] = rng.range(1, 40) as f64;
        rates.write[v] = rng.range(1, 40) as f64;
    }
    (ov, rates)
}

#[test]
fn maxflow_is_optimal_on_random_instances() {
    for seed in 0..40u64 {
        let (ov, rates) = random_instance(seed);
        if ov.ids().count() > 22 {
            continue;
        }
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
        let out = decide_maxflow(&ov, &costs);
        assert!(out.decisions.is_valid(&ov), "seed {seed}");
        let got = out.decisions.total_cost(&ov, &costs);
        let want = brute_force(&ov, &costs);
        assert!(
            (got - want).abs() < 1e-3,
            "seed {seed}: maxflow {got} vs brute force {want}"
        );
    }
}

#[test]
fn greedy_is_valid_and_not_better_than_optimal() {
    for seed in 100..140u64 {
        let (ov, rates) = random_instance(seed);
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
        let g = decide_greedy(&ov, &costs);
        assert!(g.is_valid(&ov), "seed {seed}");
        let m = decide_maxflow(&ov, &costs).decisions;
        assert!(
            g.total_cost(&ov, &costs) >= m.total_cost(&ov, &costs) - 1e-3,
            "seed {seed}: greedy beat the optimum?!"
        );
    }
}

#[test]
fn baselines_bracket_the_optimum() {
    for seed in 200..220u64 {
        let (ov, rates) = random_instance(seed);
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
        let opt = decide_maxflow(&ov, &costs)
            .decisions
            .total_cost(&ov, &costs);
        let push = Decisions::all_push(&ov).total_cost(&ov, &costs);
        let pull = Decisions::all_pull(&ov).total_cost(&ov, &costs);
        assert!(opt <= push + 1e-9, "seed {seed}");
        assert!(opt <= pull + 1e-9, "seed {seed}");
    }
}

#[test]
fn costlier_pulls_push_the_frontier_forward() {
    // As L(k) grows relative to H(k), the optimal plan must monotonically
    // prefer push (the mechanism behind Fig 13c).
    let (ov, rates) = random_instance(7);
    let f = propagate_frequencies(&ov, &rates);
    let mut last_push_count = 0usize;
    for scale in [0.25, 1.0, 4.0, 16.0] {
        let cost = CostModel {
            push: eagr::agg::CostFn::Constant(1.0),
            pull: eagr::agg::CostFn::Linear(scale),
        };
        let costs = node_costs(&ov, &f, &cost, 1);
        let d = decide_maxflow(&ov, &costs).decisions;
        let pushes = d.push_count();
        assert!(
            pushes >= last_push_count,
            "push count must not shrink as pulls get pricier"
        );
        last_push_count = pushes;
    }
}
